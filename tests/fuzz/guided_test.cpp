// The coverage-guided layer: feature extraction from counter deltas, the
// coverage map, the mutation engine, the input-value shrink pass, and the
// guided driver end to end — determinism (byte-identical corpus and
// coverage document across runs), the guided-beats-blind acceptance bar,
// corpus replayability, and the failure path. The compile-time fault
// hooks get guided-mode e2e twins of the fuzz_test.cpp self-tests.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/fault.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/guided.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "ir/printer.hpp"
#include "ir/stmt.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace mbcr::fuzz {
namespace {

// --- coverage features ----------------------------------------------------

TEST(Coverage, CounterAllowlistAndTimingExclusion) {
  EXPECT_TRUE(coverage_counter("replay.single_level.runs"));
  EXPECT_TRUE(coverage_counter("vm.op.kAdd"));
  EXPECT_TRUE(coverage_counter("tac.groups"));
  EXPECT_TRUE(coverage_counter("verify.elisions"));
  EXPECT_TRUE(coverage_counter("fuzz.oracle.replay.runs"));
  // Time-valued counters would break cross-machine determinism.
  EXPECT_FALSE(coverage_counter("fuzz.oracle.replay.wall_ns"));
  EXPECT_FALSE(coverage_counter("study.runs"));  // not an allowlisted family
  EXPECT_FALSE(coverage_counter("fuzz.cases"));
}

TEST(Coverage, FeaturesBucketDeltasByBitWidth) {
  const std::vector<std::pair<std::string, std::uint64_t>> delta = {
      {"replay.single_level.runs", 5},   // bit_width(5) = 3
      {"study.ignored", 1000},           // filtered out
      {"vm.op.kAdd", 1},                 // bit_width(1) = 1
      {"vm.op.kAdd.wall_ns", 12345},     // timing, filtered out
  };
  const std::vector<Feature> features = features_from_delta(delta);
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features[0], "replay.single_level.runs#3");
  EXPECT_EQ(features[1], "vm.op.kAdd#1");
}

TEST(Coverage, MapTracksFreshFeaturesAndRarity) {
  CoverageMap map;
  const std::vector<Feature> first = map.add({"a#1", "b#2"});
  EXPECT_EQ(first.size(), 2u);
  const std::vector<Feature> second = map.add({"a#1", "c#3"});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], "c#3");
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.hits("a#1"), 2u);
  EXPECT_EQ(map.hits("b#2"), 1u);
  EXPECT_EQ(map.hits("nope"), 0u);
  // Rarity favors the less-hit features: 1/2 + 1/1.
  EXPECT_DOUBLE_EQ(map.rarity({"a#1", "b#2"}), 1.5);
}

// --- the mutation engine --------------------------------------------------

std::string case_fingerprint(const FuzzCaseData& data) {
  Repro repro;
  repro.data = data;
  return repro_to_json(repro).dump(2);
}

TEST(Mutate, IsDeterministicUnderTheSameRngStream) {
  const FuzzCaseData seed = make_case(11, 0, 4);
  const FuzzCaseData donor = make_case(11, 1, 4);
  Xoshiro256 rng_a(42), rng_b(42);
  for (int i = 0; i < 20; ++i) {
    const FuzzCaseData a = mutate_any(seed, &donor, rng_a);
    const FuzzCaseData b = mutate_any(seed, &donor, rng_b);
    EXPECT_EQ(case_fingerprint(a), case_fingerprint(b));
  }
}

TEST(Mutate, MutantsValidateAndGetFreshCaseSeeds) {
  const FuzzCaseData seed = make_case(11, 0, 4);
  const FuzzCaseData donor = make_case(11, 1, 4);
  Xoshiro256 rng(7);
  std::set<std::uint64_t> case_seeds;
  for (int i = 0; i < 50; ++i) {
    const FuzzCaseData m = mutate_any(seed, &donor, rng);
    EXPECT_NO_THROW(ir::validate(m.program));
    EXPECT_NE(m.case_seed, seed.case_seed);
    case_seeds.insert(m.case_seed);
  }
  EXPECT_EQ(case_seeds.size(), 50u);  // every mutant is its own case
}

TEST(Mutate, EveryKindAppliesToARealisticSeed) {
  const FuzzCaseData seed = make_case(3, 2, 4);
  const FuzzCaseData donor = make_case(3, 4, 4);  // small: under splice cap
  for (const MutationKind kind :
       {MutationKind::kSplice, MutationKind::kStmtSwap,
        MutationKind::kConstNudge, MutationKind::kGeometry,
        MutationKind::kInputs, MutationKind::kRunSeeds}) {
    // Some kinds can refuse a particular draw (nothing to swap, cap hit);
    // across a few attempts each kind must apply to a generator case.
    Xoshiro256 rng(mix64(static_cast<std::uint64_t>(kind), 1));
    bool applied = false;
    FuzzCaseData out;
    for (int attempt = 0; attempt < 16 && !applied; ++attempt) {
      applied = mutate_case(seed, &donor, kind, rng, out);
    }
    EXPECT_TRUE(applied) << to_string(kind);
    EXPECT_NO_THROW(ir::validate(out.program)) << to_string(kind);
  }
}

TEST(Mutate, RunSeedScalingStaysInBounds) {
  const FuzzCaseData seed = make_case(3, 0, 4);
  Xoshiro256 rng(9);
  FuzzCaseData out;
  for (int i = 0; i < 100; ++i) {
    if (!mutate_case(seed, nullptr, MutationKind::kRunSeeds, rng, out)) {
      continue;
    }
    EXPECT_GE(out.run_seeds.size(), 1u);
    EXPECT_LE(out.run_seeds.size(), 64u);
    EXPECT_TRUE(out.run_seeds.size() == 8u ||  // doubled
                out.run_seeds.size() == 2u);   // halved
  }
}

TEST(Mutate, SplicedProgramContainsBothBodies) {
  const FuzzCaseData seed = make_case(3, 2, 2);
  const FuzzCaseData donor = make_case(3, 4, 2);
  Xoshiro256 rng(1);
  FuzzCaseData out;
  ASSERT_TRUE(mutate_case(seed, &donor, MutationKind::kSplice, rng, out));
  EXPECT_GE(ir::stmt_count(out.program.body),
            ir::stmt_count(seed.program.body) +
                ir::stmt_count(donor.program.body) - 1);
  EXPECT_NO_THROW(ir::validate(out.program));
}

TEST(Mutate, SpliceRefusesOversizedMutants) {
  const FuzzCaseData seed = make_case(3, 2, 2);
  const FuzzCaseData big = make_case(3, 5, 2);  // 300+ statements
  Xoshiro256 rng(1);
  FuzzCaseData out;
  EXPECT_FALSE(mutate_case(seed, &big, MutationKind::kSplice, rng, out));
  EXPECT_FALSE(mutate_case(seed, nullptr, MutationKind::kSplice, rng, out));
}

// --- input-value shrinking (satellite: value-dependent minimal repro) -----

/// Test-local value-dependent oracle: fails iff some input carries scalar
/// "x" >= 100. Program contents are irrelevant — exactly the shape where
/// only the value passes can make progress on the surviving input.
OracleOutcome value_dependent(const FuzzCaseData& data, bool) {
  for (const ir::InputVector& in : data.inputs) {
    const auto it = in.scalars.find("x");
    if (it != in.scalars.end() && it->second >= 100) {
      return {false, "x >= 100"};
    }
  }
  return {};
}

TEST(FuzzShrink, ValuePassesReduceToTheMinimalInput) {
  FuzzCaseData data = make_case(1, 0, 4);
  ASSERT_FALSE(data.inputs.empty());
  for (ir::InputVector& in : data.inputs) in.scalars["x"] = 6400;
  data.inputs.front().scalars["unrelated"] = 999;

  const Oracle oracle{"value_dependent", "test-local", value_dependent};
  ASSERT_FALSE(oracle.run(data, false).ok);

  const FuzzCaseData shrunk = shrink_case(data, oracle, false, 2000);
  ASSERT_FALSE(oracle.run(shrunk, false).ok);  // the failure is preserved

  // Structural passes got it down to one input; the value passes then
  // halved the live scalar to the minimal failing magnitude and zeroed
  // everything else.
  ASSERT_EQ(shrunk.inputs.size(), 1u);
  const ir::InputVector& in = shrunk.inputs.front();
  const auto x = in.scalars.find("x");
  ASSERT_NE(x, in.scalars.end());
  EXPECT_GE(x->second, 100);
  EXPECT_LT(x->second, 200);  // halving cannot stop above 2x the threshold
  for (const auto& [name, value] : in.scalars) {
    if (name != "x") EXPECT_EQ(value, 0) << name;
  }
  for (const auto& [name, contents] : in.arrays) {
    for (const ir::Value v : contents) EXPECT_EQ(v, 0) << name;
  }
}

// --- the guided driver end to end -----------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One shared computation for the e2e assertions below: two identical
/// guided runs (determinism), one blind run (the baseline), fixed budget
/// and seed. ~15s total, paid once for the whole suite.
struct GuidedRuns {
  GuidedConfig guided_cfg;
  GuidedReport guided_a, guided_b, blind;
  std::string dir_a, dir_b;
};

const GuidedRuns& runs() {
  static const GuidedRuns* cached = [] {
    auto* r = new GuidedRuns;
    r->dir_a = ::testing::TempDir() + "/guided-corpus-a";
    r->dir_b = ::testing::TempDir() + "/guided-corpus-b";
    ::mkdir(r->dir_a.c_str(), 0755);
    ::mkdir(r->dir_b.c_str(), 0755);

    GuidedConfig cfg;
    cfg.base.programs = 60;
    cfg.base.seeds = 4;
    cfg.base.rng_seed = 1;
    r->guided_cfg = cfg;

    cfg.corpus_out = r->dir_a;
    r->guided_a = run_guided(cfg);
    cfg.corpus_out = r->dir_b;
    r->guided_b = run_guided(cfg);

    GuidedConfig blind = r->guided_cfg;
    blind.guided = false;
    r->blind = run_guided(blind);
    return r;
  }();
  return *cached;
}

TEST(GuidedFuzz, HealthyRunPassesAndAccountsCases) {
  const GuidedRuns& r = runs();
  EXPECT_TRUE(r.guided_a.ok()) << (r.guided_a.fuzz.failures.empty()
                                       ? ""
                                       : r.guided_a.fuzz.failures.front()
                                             .detail);
  EXPECT_EQ(r.guided_a.fuzz.cases_run, 60u);
  EXPECT_EQ(r.guided_a.blind_cases + r.guided_a.mutated_cases, 60u);
  EXPECT_TRUE(r.blind.ok());
  EXPECT_EQ(r.blind.mutated_cases, 0u);  // guided=false never mutates
  EXPECT_EQ(r.guided_a.coverage_measured, obs::kCompiledIn);
}

TEST(GuidedFuzz, RerunIsByteIdentical) {
  const GuidedRuns& r = runs();
  // Same seed, same budget: identical corpus membership...
  ASSERT_EQ(r.guided_a.corpus.size(), r.guided_b.corpus.size());
  for (std::size_t i = 0; i < r.guided_a.corpus.size(); ++i) {
    EXPECT_EQ(r.guided_a.corpus[i].case_seed, r.guided_b.corpus[i].case_seed);
    EXPECT_EQ(r.guided_a.corpus[i].new_features,
              r.guided_b.corpus[i].new_features);
    // ... byte-identical seed files ...
    ASSERT_FALSE(r.guided_a.corpus[i].file.empty());
    const std::string bytes = slurp(r.guided_a.corpus[i].file);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, slurp(r.guided_b.corpus[i].file));
  }
  // ... identical feature map, and a byte-identical coverage document.
  EXPECT_EQ(r.guided_a.feature_hits, r.guided_b.feature_hits);
  GuidedConfig cfg_a = r.guided_cfg;
  cfg_a.corpus_out = r.dir_a;
  GuidedConfig cfg_b = r.guided_cfg;
  cfg_b.corpus_out = r.dir_b;
  EXPECT_EQ(coverage_document(cfg_a, r.guided_a).dump(2),
            coverage_document(cfg_b, r.guided_b).dump(2));
}

TEST(GuidedFuzz, BeatsBlindOnFeaturesForTheSameBudget) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "no coverage signal in -DMBCR_OBS=OFF builds";
  }
  const GuidedRuns& r = runs();
  // The tentpole acceptance bar: same case budget, same master seed,
  // strictly more coverage features with guidance on.
  EXPECT_GT(r.guided_a.features_discovered, r.blind.features_discovered);
  EXPECT_GT(r.guided_a.mutated_cases, 0u);
  EXPECT_GT(r.guided_a.corpus.size(), 0u);
}

TEST(GuidedFuzz, CorpusSeedsReplayGreen) {
  const GuidedRuns& r = runs();
  if (obs::kCompiledIn) ASSERT_FALSE(r.guided_a.corpus.empty());
  for (const GuidedSeed& seed : r.guided_a.corpus) {
    ASSERT_FALSE(seed.file.empty());
    const Repro repro = load_repro(seed.file);
    const OracleOutcome outcome = run_repro(repro);
    EXPECT_TRUE(outcome.ok) << seed.file << ": " << outcome.detail;
  }
}

TEST(GuidedFuzz, CoverageDocumentShape) {
  const GuidedRuns& r = runs();
  GuidedConfig cfg = r.guided_cfg;
  cfg.corpus_out = r.dir_a;
  const json::Value doc = coverage_document(cfg, r.guided_a);
  EXPECT_EQ(doc.at("schema").as_string(), "mbcr-fuzz-coverage-v1");
  EXPECT_TRUE(doc.at("guided").as_bool());
  EXPECT_EQ(doc.at("cases").as_number(), 60.0);
  EXPECT_EQ(doc.at("features").as_number(),
            static_cast<double>(r.guided_a.features_discovered));
  EXPECT_EQ(doc.at("corpus").as_array().size(), r.guided_a.corpus.size());
  // No timing anywhere: the document must be machine-independent.
  EXPECT_EQ(doc.find("wall_s"), nullptr);
  // Round-trippable JSON.
  EXPECT_EQ(json::parse(doc.dump(2)).dump(2), doc.dump(2));
}

TEST(GuidedFuzz, RejectsBadConfigLikeRunFuzz) {
  GuidedConfig cfg;
  cfg.base.oracle = "nosuch";
  EXPECT_THROW(run_guided(cfg), std::invalid_argument);
  cfg.base.oracle = "all";
  cfg.base.seeds = 0;
  EXPECT_THROW(run_guided(cfg), std::invalid_argument);
}

TEST(GuidedFuzz, InjectedFaultIsFoundShrunkAndEmitted) {
  GuidedConfig cfg;
  cfg.base.programs = 2;
  cfg.base.seeds = 4;
  cfg.base.rng_seed = 1;
  cfg.base.inject_fault_for_test = true;
  cfg.base.corpus_dir = ::testing::TempDir();
  const GuidedReport report = run_guided(cfg);
  ASSERT_FALSE(report.ok());
  const FuzzFailure& failure = report.fuzz.failures.front();
  EXPECT_EQ(failure.oracle, "replay");
  EXPECT_LE(failure.shrunk.run_seeds.size(), 1u);
  ASSERT_FALSE(failure.repro_path.empty());
  EXPECT_TRUE(run_repro(load_repro(failure.repro_path)).ok);
  // Failing cases never become corpus seeds.
  EXPECT_TRUE(report.corpus.empty());
  for (const FuzzFailure& f : report.fuzz.failures) {
    std::remove(f.repro_path.c_str());
  }
}

// --- guided-mode e2e twins of the compile-time fault self-tests -----------

#ifdef MBCR_FUZZ_FAULT
TEST(GuidedFault, GuidedFinderCatchesTheCompiledReplayFault) {
  ASSERT_TRUE(fault_compiled_in());
  set_fault_enabled(true);
  GuidedConfig cfg;
  cfg.base.programs = 10;  // bounded budget: found well within it
  cfg.base.seeds = 4;
  cfg.base.rng_seed = 1;
  cfg.base.corpus_dir = ::testing::TempDir();
  const GuidedReport report = run_guided(cfg);
  ASSERT_FALSE(report.ok());
  const FuzzFailure& failure = report.fuzz.failures.front();
  EXPECT_EQ(failure.oracle, "replay");
  ASSERT_FALSE(failure.repro_path.empty());
  set_fault_enabled(false);
  EXPECT_TRUE(run_repro(load_repro(failure.repro_path)).ok);
  set_fault_enabled(true);
  for (const FuzzFailure& f : report.fuzz.failures) {
    std::remove(f.repro_path.c_str());
  }
}
#endif

#ifdef MBCR_VM_FAULT
TEST(GuidedFault, GuidedFinderCatchesTheCompiledVmMiscompile) {
  ASSERT_TRUE(vm_fault_compiled_in());
  set_vm_fault_enabled(true);
  GuidedConfig cfg;
  cfg.base.programs = 10;
  cfg.base.seeds = 2;
  cfg.base.rng_seed = 1;
  cfg.base.oracle = "vm";
  cfg.base.corpus_dir = ::testing::TempDir();
  const GuidedReport report = run_guided(cfg);
  ASSERT_FALSE(report.ok());
  const FuzzFailure& failure = report.fuzz.failures.front();
  EXPECT_EQ(failure.oracle, "vm");
  EXPECT_FALSE(failure.shrunk.program.arrays.empty());
  ASSERT_FALSE(failure.repro_path.empty());
  set_vm_fault_enabled(false);
  EXPECT_TRUE(run_repro(load_repro(failure.repro_path)).ok);
  set_vm_fault_enabled(true);
  for (const FuzzFailure& f : report.fuzz.failures) {
    std::remove(f.repro_path.c_str());
  }
}
#endif

#ifdef MBCR_VERIFY_FAULT
TEST(GuidedFault, GuidedFinderCatchesTheCompiledProofFault) {
  ASSERT_TRUE(verify_fault_compiled_in());
  set_verify_fault_enabled(true);
  GuidedConfig cfg;
  cfg.base.programs = 10;
  cfg.base.seeds = 2;
  cfg.base.rng_seed = 1;
  cfg.base.oracle = "verify";
  cfg.base.corpus_dir = ::testing::TempDir();
  const GuidedReport report = run_guided(cfg);
  ASSERT_FALSE(report.ok());
  const FuzzFailure& failure = report.fuzz.failures.front();
  EXPECT_EQ(failure.oracle, "verify");
  EXPECT_FALSE(failure.shrunk.program.arrays.empty());
  ASSERT_FALSE(failure.repro_path.empty());
  set_verify_fault_enabled(false);
  EXPECT_TRUE(run_repro(load_repro(failure.repro_path)).ok);
  set_verify_fault_enabled(true);
  for (const FuzzFailure& f : report.fuzz.failures) {
    std::remove(f.repro_path.c_str());
  }
}
#endif

}  // namespace
}  // namespace mbcr::fuzz
