// FuzzCorpus: replays every committed fuzz repro forever after.
//
// Corpus policy (see docs/architecture.md "Differential fuzzing"): when
// the fuzzer finds and shrinks a failure, the minimized repro is committed
// under tests/fuzz_corpus/corpus/ once the underlying bug is fixed. Each
// document is fully self-contained (program, inputs, seeds, geometry), so
// it keeps replaying the exact computation even as the generator evolves.
// This suite fails if any committed repro regresses — or if the corpus
// directory silently disappears.
//
// The MBCR_FUZZ_CORPUS environment variable points the suite at a
// different corpus directory; the nightly fault-injection job uses it to
// replay a freshly-shrunk repro inside the deliberately-broken build,
// where this suite is EXPECTED to fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "fuzz/repro.hpp"

namespace mbcr::fuzz {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() {
  const char* env = std::getenv("MBCR_FUZZ_CORPUS");
  if (env && *env) return env;
  return fs::path(MBCR_SOURCE_DIR) / "tests" / "fuzz_corpus" / "corpus";
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> out;
  if (!fs::exists(corpus_dir())) return out;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() == ".json") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FuzzCorpus, CorpusIsPresent) {
  ASSERT_TRUE(fs::exists(corpus_dir()))
      << "corpus directory missing: " << corpus_dir();
  EXPECT_FALSE(corpus_files().empty())
      << "the seeded regression corpus must never be empty";
}

TEST(FuzzCorpus, EveryReproReplaysGreen) {
  for (const fs::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    Repro repro;
    ASSERT_NO_THROW(repro = load_repro(path.string()));
    const OracleOutcome outcome = run_repro(repro);
    EXPECT_TRUE(outcome.ok)
        << path.filename().string() << " regressed: " << outcome.detail
        << "\n(originally: " << repro.detail << ")";
  }
}

}  // namespace
}  // namespace mbcr::fuzz
