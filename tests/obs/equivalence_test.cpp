// The observability layer's hard contract: collection must never change a
// result. Instrumentation only reads engine state, so a metrics-on run is
// bit-identical to a metrics-off run — samples, tokens, estimates, study
// JSON. These tests pin that over the engine grid (single-level,
// random-L2, LRU-L2 x hash/modulo placement), the VM's tally
// instantiations, the convergence driver, and the full Study API.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/study.hpp"
#include "ir/interp.hpp"
#include "mbpta/convergence.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/campaign.hpp"
#include "platform/machine.hpp"
#include "suite/malardalen.hpp"
#include "util/json.hpp"

namespace mbcr::obs {
namespace {

/// Arms metrics + tracing for one scope (progress stays off: it writes
/// stderr, which is irrelevant to result equivalence and noisy in tests).
struct FullObsScope {
  FullObsScope() {
    reset_metrics();
    reset_trace();
    set_enabled(true);
    set_trace_enabled(true);
  }
  ~FullObsScope() {
    set_enabled(false);
    set_trace_enabled(false);
    reset_metrics();
    reset_trace();
  }
};

/// The machine-config grid the engine-equivalence suite covers; collection
/// hooks sit on every one of these replay paths.
std::vector<std::pair<std::string, platform::MachineConfig>> machine_grid() {
  std::vector<std::pair<std::string, platform::MachineConfig>> grid;
  for (const Placement placement : {Placement::kHash, Placement::kModulo}) {
    const std::string suffix =
        placement == Placement::kHash ? "/hash" : "/modulo";
    {
      platform::MachineConfig cfg;
      cfg.il1.placement = placement;
      cfg.dl1.placement = placement;
      grid.emplace_back("single_level" + suffix, cfg);
    }
    {
      platform::MachineConfig cfg;
      cfg.il1.placement = placement;
      cfg.dl1.placement = placement;
      cfg.l2.enabled = true;
      cfg.l2.policy = L2Policy::kRandom;
      cfg.l2.l2.placement = placement;
      grid.emplace_back("l2_random" + suffix, cfg);
    }
    {
      platform::MachineConfig cfg;
      cfg.il1.placement = placement;
      cfg.dl1.placement = placement;
      cfg.l2.enabled = true;
      cfg.l2.policy = L2Policy::kLru;
      grid.emplace_back("l2_lru" + suffix, cfg);
    }
  }
  return grid;
}

CompactTrace kernel_trace(const std::string& name) {
  const auto b = suite::make_benchmark(name);
  return CompactTrace::from(
      ir::lower_and_execute(b.program, b.default_input).trace);
}

TEST(ObsEquivalence, CampaignSamplesAreBitIdenticalAcrossTheEngineGrid) {
  const CompactTrace trace = kernel_trace("bs");
  constexpr std::size_t kRuns = 600;
  for (const auto& [label, cfg] : machine_grid()) {
    const platform::Machine machine(cfg);
    const std::vector<double> off =
        platform::run_campaign(machine, trace, kRuns);
    std::vector<double> on;
    {
      FullObsScope obs_on;
      on = platform::run_campaign(machine, trace, kRuns);
    }
    EXPECT_EQ(off, on) << label;
  }
}

TEST(ObsEquivalence, BatchedAndUnbatchedReplayUnaffectedByCollection) {
  // Both replay paths carry counters (run_batch flushes per batch,
  // run_once per run); neither may perturb a single cycle count.
  const CompactTrace trace = kernel_trace("crc");
  for (const auto& [label, cfg] : machine_grid()) {
    const platform::Machine machine(cfg);
    platform::RunWorkspace ws;
    const std::vector<std::uint64_t> seeds = {3, 14, 159, 2653};
    std::vector<std::uint64_t> off_once;
    std::vector<std::uint64_t> off_batch(seeds.size());
    for (const std::uint64_t seed : seeds) {
      off_once.push_back(machine.run_once(trace, seed, ws));
    }
    machine.run_batch(trace, seeds, ws, off_batch.data());

    FullObsScope obs_on;
    std::vector<std::uint64_t> on_once;
    std::vector<std::uint64_t> on_batch(seeds.size());
    for (const std::uint64_t seed : seeds) {
      on_once.push_back(machine.run_once(trace, seed, ws));
    }
    machine.run_batch(trace, seeds, ws, on_batch.data());
    EXPECT_EQ(off_once, on_once) << label;
    EXPECT_EQ(off_batch, on_batch) << label;
  }
}

TEST(ObsEquivalence, VmTallyMachinesProduceIdenticalExecutions) {
  // obs-on selects the Tally VM instantiations (per-opcode dispatch
  // counts); trace, tokens, path, and leaf steps must not move.
  for (const suite::SuiteEntry& entry : suite::all()) {
    const suite::SuiteBenchmark bench = entry.make();
    const ir::ExecResult off =
        ir::lower_and_execute(bench.program, bench.default_input);
    ir::ExecResult on;
    {
      FullObsScope obs_on;
      on = ir::lower_and_execute(bench.program, bench.default_input);
    }
    EXPECT_EQ(off.trace.accesses, on.trace.accesses) << entry.name;
    EXPECT_EQ(off.tokens, on.tokens) << entry.name;
    EXPECT_EQ(off.path, on.path) << entry.name;
    EXPECT_EQ(off.leaf_steps, on.leaf_steps) << entry.name;
  }
}

#if !defined(MBCR_OBS_DISABLED)
TEST(ObsEquivalence, VmOpcodeTalliesActuallyCount) {
  // The flip side of the equivalence proof: with collection on, the VM
  // does report dispatches (otherwise the previous test would pass
  // vacuously with dead instrumentation).
  const suite::SuiteBenchmark bench = suite::make_benchmark("bs");
  FullObsScope obs_on;
  (void)ir::lower_and_execute(bench.program, bench.default_input);
  const json::Value snap = metrics_json();
  double total = 0;
  for (const auto& [name, value] : snap.at("counters").as_object()) {
    if (name.rfind("vm.op.", 0) == 0) total += value.as_number();
  }
  EXPECT_GT(total, 0.0) << "no vm.op.* dispatch counters collected";
}
#endif

TEST(ObsEquivalence, ConvergenceEstimatesAreBitIdentical) {
  const CompactTrace trace = kernel_trace("bs");
  const platform::Machine machine;
  mbpta::ConvergenceConfig conv;
  conv.max_runs = 4000;

  const auto converge_now = [&] {
    platform::CampaignSampler sampler(machine, trace);
    return mbpta::converge_stream(
        [&sampler](std::vector<double>& sample, std::size_t k) {
          sampler.append_to(sample, k);
        },
        conv);
  };
  const mbpta::ConvergenceResult off = converge_now();
  mbpta::ConvergenceResult on;
  {
    FullObsScope obs_on;
    on = converge_now();
  }
  EXPECT_EQ(off.runs, on.runs);
  EXPECT_EQ(off.converged, on.converged);
  EXPECT_EQ(off.estimates, on.estimates);
  EXPECT_EQ(off.sample, on.sample);
}

/// Drops the observability-only members from a parsed study document.
json::Value strip_obs_members(const json::Value& doc) {
  json::Object out;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "accounting" || key == "metrics") continue;
    out.emplace_back(key, value);
  }
  return json::Value(std::move(out));
}

TEST(ObsEquivalence, StudyJsonIsByteIdenticalModuloTheAdditiveBlocks) {
  core::StudySpec spec;
  spec.suite = "bs";
  spec.mode = core::StudyMode::kPubTac;
  spec.config.convergence.max_runs = 2000;
  spec.config.tac.max_runs_cap = 2000;
  spec.curve_max_exp = 12;

  std::ostringstream off_ss;
  core::run_study(spec).write_json(off_ss);

  std::ostringstream on_ss;
  {
    FullObsScope obs_on;
    core::run_study(spec).write_json(on_ss);
  }

  const json::Value off_doc = json::parse(off_ss.str());
  const json::Value on_doc = json::parse(on_ss.str());
  // Metrics-off: no accounting/metrics members at all.
  EXPECT_EQ(off_doc.find("accounting"), nullptr);
  EXPECT_EQ(off_doc.find("metrics"), nullptr);
  if (kCompiledIn) {
    // Metrics-on: both blocks present, and sane.
    ASSERT_NE(on_doc.find("accounting"), nullptr);
    ASSERT_NE(on_doc.find("metrics"), nullptr);
    EXPECT_GT(on_doc.at("accounting").at("wall_s").as_number(), 0.0);
    EXPECT_NE(on_doc.at("metrics").at("counters").find("campaign.runs"),
              nullptr);
    EXPECT_NE(on_doc.at("metrics").at("counters").find("convergence.refits"),
              nullptr);
  }
  // Everything else: byte-identical.
  EXPECT_EQ(off_doc.dump(2), strip_obs_members(on_doc).dump(2));
}

#if !defined(MBCR_OBS_DISABLED)
TEST(ObsEquivalence, InstrumentedStudyEmitsAllPipelinePhaseSpans) {
  core::StudySpec spec;
  spec.suite = "bs";
  spec.mode = core::StudyMode::kPubTac;
  spec.config.convergence.max_runs = 2000;
  spec.config.tac.max_runs_cap = 2000;

  FullObsScope obs_on;
  (void)core::run_study(spec);
  const json::Value doc = trace_json();

  std::vector<std::string> seen;
  for (const json::Value& ev : doc.at("traceEvents").as_array()) {
    const json::Value* ph = ev.find("ph");
    if (ph != nullptr && ph->as_string() == "X") {
      seen.push_back(ev.at("name").as_string());
    }
  }
  for (const char* phase :
       {"study", "pub", "lower", "compile", "verify", "execute", "probe",
        "tac", "converge", "refit", "campaign", "evt_fit"}) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), phase), seen.end())
        << "phase span missing from trace: " << phase;
  }
}
#endif

}  // namespace
}  // namespace mbcr::obs
