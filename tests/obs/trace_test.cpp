// Phase-tracing unit tests: span gating, the Chrome trace_event document
// shape Perfetto expects, the event cap, and thread-id assignment.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace mbcr::obs {
namespace {

struct TraceScope {
  explicit TraceScope(bool on) {
    reset_trace();
    set_trace_enabled(on);
  }
  ~TraceScope() {
    set_trace_enabled(false);
    reset_trace();
  }
};

/// Events named `name` in a trace_json document (skips metadata events).
int count_events(const json::Value& doc, const std::string& name) {
  int n = 0;
  for (const json::Value& ev : doc.at("traceEvents").as_array()) {
    const json::Value* ph = ev.find("ph");
    if (ph != nullptr && ph->as_string() == "X" &&
        ev.at("name").as_string() == name) {
      ++n;
    }
  }
  return n;
}

#if !defined(MBCR_OBS_DISABLED)

TEST(Trace, DisabledSpansEmitNothing) {
  TraceScope scope(false);
  { Span span("test_phase"); }
  EXPECT_EQ(count_events(trace_json(), "test_phase"), 0);
}

TEST(Trace, SpanEmitsOneCompleteEventPerScope) {
  TraceScope scope(true);
  { Span span("test_outer"); Span inner("test_inner"); }
  { Span span("test_outer"); }
  const json::Value doc = trace_json();
  EXPECT_EQ(count_events(doc, "test_outer"), 2);
  EXPECT_EQ(count_events(doc, "test_inner"), 1);
}

TEST(Trace, DocumentHasThePerfettoShape) {
  TraceScope scope(true);
  { Span span("test_shape"); }
  const json::Value doc = trace_json();

  // Top level: the object form with displayTimeUnit.
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_GE(events.size(), 2u);
  // First event: process-name metadata so the track is labeled.
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("name").as_string(), "process_name");
  EXPECT_EQ(events[0].at("args").at("name").as_string(), "mbcr");

  // The span: a complete event with the required keys.
  const json::Value& span_ev = events[1];
  EXPECT_EQ(span_ev.at("name").as_string(), "test_shape");
  EXPECT_EQ(span_ev.at("cat").as_string(), "mbcr");
  EXPECT_EQ(span_ev.at("ph").as_string(), "X");
  EXPECT_TRUE(span_ev.at("ts").is_number());
  EXPECT_TRUE(span_ev.at("dur").is_number());
  EXPECT_TRUE(span_ev.at("pid").is_number());
  EXPECT_GE(span_ev.at("tid").as_number(), 1.0);

  // And it serializes to parseable JSON (what --trace-json writes).
  EXPECT_EQ(json::parse(doc.dump(2)).dump(2), doc.dump(2));
}

TEST(Trace, SpansFromDifferentThreadsGetDistinctTids) {
  TraceScope scope(true);
  { Span span("test_tid"); }
  std::thread other([] { Span span("test_tid"); });
  other.join();
  const json::Value doc = trace_json();
  double tid_a = -1.0;
  double tid_b = -1.0;
  for (const json::Value& ev : doc.at("traceEvents").as_array()) {
    if (ev.find("ph") == nullptr || ev.at("ph").as_string() != "X") continue;
    if (ev.at("name").as_string() != "test_tid") continue;
    (tid_a < 0 ? tid_a : tid_b) = ev.at("tid").as_number();
  }
  EXPECT_GE(tid_a, 1.0);
  EXPECT_GE(tid_b, 1.0);
  EXPECT_NE(tid_a, tid_b);
}

TEST(Trace, BufferCapDropsInsteadOfGrowing) {
  TraceScope scope(true);
  for (std::size_t i = 0; i < kMaxTraceEvents + 100; ++i) {
    detail::trace_emit("test_cap", 0, 0);
  }
  const json::Value doc = trace_json();
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), kMaxTraceEvents + 1);
  EXPECT_EQ(doc.at("mbcrDroppedEvents").as_number(), 100.0);
  reset_trace();
  EXPECT_EQ(trace_json().find("mbcrDroppedEvents"), nullptr);
}

#else  // MBCR_OBS_DISABLED

TEST(Trace, CompiledOutDocumentIsEmptyButWellFormed) {
  set_trace_enabled(true);
  { Span span("test_noop"); }
  const json::Value doc = trace_json();
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

#endif  // MBCR_OBS_DISABLED

}  // namespace
}  // namespace mbcr::obs
