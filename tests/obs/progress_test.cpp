// Progress-reporting tests, pinning the stream contract: every progress
// line goes to stderr, never stdout (stdout is reserved for machine
// output like `--json -`), and a disabled gate prints nothing at all.
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>

#include "obs/progress.hpp"

namespace mbcr::obs {
namespace {

/// Captures std::cout and std::cerr for the scope of one test.
struct StreamCapture {
  StreamCapture()
      : old_cout(std::cout.rdbuf(cout.rdbuf())),
        old_cerr(std::cerr.rdbuf(cerr.rdbuf())) {}
  ~StreamCapture() {
    std::cout.rdbuf(old_cout);
    std::cerr.rdbuf(old_cerr);
  }
  std::ostringstream cout;
  std::ostringstream cerr;
  std::streambuf* old_cout;
  std::streambuf* old_cerr;
};

struct ProgressScope {
  explicit ProgressScope(bool on) { set_progress_enabled(on); }
  ~ProgressScope() { set_progress_enabled(false); }
};

#if !defined(MBCR_OBS_DISABLED)

TEST(Progress, DisabledGatePrintsNothing) {
  ProgressScope scope(false);
  StreamCapture capture;
  progress_tick("campaign", 10, 100, "runs");
  progress_done("campaign", 100, "runs");
  EXPECT_EQ(capture.cout.str(), "");
  EXPECT_EQ(capture.cerr.str(), "");
}

TEST(Progress, LinesGoToStderrNeverStdout) {
  ProgressScope scope(true);
  StreamCapture capture;
  // progress_done always prints (ticks are rate-limited; a test must not
  // depend on the 4 Hz window being open).
  progress_done("campaign", 12345, "runs");
  EXPECT_EQ(capture.cout.str(), "") << "progress leaked onto stdout";
  const std::string err = capture.cerr.str();
  EXPECT_NE(err.find("[mbcr] campaign:"), std::string::npos) << err;
  EXPECT_NE(err.find("12345 runs"), std::string::npos) << err;
  EXPECT_EQ(err.back(), '\n') << "lines must be newline-terminated";
}

TEST(Progress, TickRendersTotalsPercentAndExtra) {
  ProgressScope scope(true);
  StreamCapture capture;
  // Prime the rate limiter window with a done line, then tick: the tick
  // itself is rate-limited, so only assert when it printed.
  progress_tick("converge", 50, 200, "samples", "refit 3");
  const std::string err = capture.cerr.str();
  if (!err.empty()) {
    EXPECT_NE(err.find("50/200 samples"), std::string::npos) << err;
    EXPECT_NE(err.find("(25%)"), std::string::npos) << err;
    EXPECT_NE(err.find("refit 3"), std::string::npos) << err;
    EXPECT_EQ(capture.cout.str(), "");
  }
}

#else  // MBCR_OBS_DISABLED

TEST(Progress, CompiledOutPrintsNothingEvenWhenArmed) {
  set_progress_enabled(true);
  StreamCapture capture;
  progress_tick("campaign", 10, 100, "runs");
  progress_done("campaign", 100, "runs");
  EXPECT_EQ(capture.cout.str(), "");
  EXPECT_EQ(capture.cerr.str(), "");
  EXPECT_FALSE(progress_enabled());
}

#endif  // MBCR_OBS_DISABLED

}  // namespace
}  // namespace mbcr::obs
