// Metrics-registry unit tests: gating, bucket math, snapshot shape, reset
// semantics, and — the property the sharded design exists for — exact
// totals under concurrent updates, registrations, and snapshots.
//
// Every test runs with the layer compiled in (the obs suite is skipped
// under MBCR_OBS_DISABLED; the equivalence suite covers the compiled-out
// shape of the JSON documents instead).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace mbcr::obs {
namespace {

/// Scoped collection gate: every test leaves the process-wide gate off so
/// suites sharing the binary never observe each other's state.
struct EnabledScope {
  explicit EnabledScope(bool on) { set_enabled(on); }
  ~EnabledScope() {
    set_enabled(false);
    reset_metrics();
  }
};

double counter_value(const json::Value& snapshot, const std::string& name) {
  const json::Value* v = snapshot.at("counters").find(name);
  return v == nullptr ? -1.0 : v->as_number();
}

#if !defined(MBCR_OBS_DISABLED)

TEST(Metrics, CompiledInReportsTrue) { EXPECT_TRUE(kCompiledIn); }

TEST(Metrics, DisabledUpdatesCollectNothing) {
  EnabledScope scope(false);
  const Counter c = counter("test.disabled_counter");
  c.add(41);
  const Gauge g = gauge("test.disabled_gauge");
  g.set(3.5);
  const Histogram h = histogram("test.disabled_hist");
  h.record(7);

  const json::Value snap = metrics_json();
  EXPECT_EQ(counter_value(snap, "test.disabled_counter"), 0.0);
  EXPECT_EQ(snap.at("gauges").at("test.disabled_gauge").as_number(), 0.0);
  EXPECT_EQ(snap.at("histograms")
                .at("test.disabled_hist")
                .at("count")
                .as_number(),
            0.0);
}

TEST(Metrics, CounterAccumulatesAndHandlesAreStable) {
  EnabledScope scope(true);
  const Counter c1 = counter("test.counter");
  const Counter c2 = counter("test.counter");  // same slot, same metric
  c1.add();
  c1.add(9);
  c2.add(90);
  EXPECT_EQ(counter_value(metrics_json(), "test.counter"), 100.0);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  EnabledScope scope(true);
  const Gauge g = gauge("test.gauge");
  g.set(1.0);
  g.set(2.5);
  EXPECT_EQ(metrics_json().at("gauges").at("test.gauge").as_number(), 2.5);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  EnabledScope scope(true);
  const Histogram h = histogram("test.hist");
  h.record(0);   // bucket "0"
  h.record(1);   // [1,1] -> key "1"
  h.record(2);   // [2,3] -> key "3"
  h.record(3);   // [2,3] -> key "3"
  h.record(100);  // [64,127] -> key "127"

  const json::Value snap = metrics_json();
  const json::Value& hist = snap.at("histograms").at("test.hist");
  EXPECT_EQ(hist.at("count").as_number(), 5.0);
  EXPECT_EQ(hist.at("sum").as_number(), 106.0);
  EXPECT_EQ(hist.at("buckets").at("0").as_number(), 1.0);
  EXPECT_EQ(hist.at("buckets").at("1").as_number(), 1.0);
  EXPECT_EQ(hist.at("buckets").at("3").as_number(), 2.0);
  EXPECT_EQ(hist.at("buckets").at("127").as_number(), 1.0);
  // Zero buckets are omitted, not emitted as 0.
  EXPECT_EQ(hist.at("buckets").find("7"), nullptr);
}

TEST(Metrics, SnapshotKeysAreSortedByName) {
  EnabledScope scope(true);
  counter("test.z_last").add(1);
  counter("test.a_first").add(1);
  const json::Value snap = metrics_json();
  const json::Object& counters = snap.at("counters").as_object();
  std::string prev;
  for (const auto& [name, value] : counters) {
    EXPECT_LE(prev, name);
    prev = name;
  }
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  EnabledScope scope(true);
  counter("test.reset_counter").add(5);
  gauge("test.reset_gauge").set(5.0);
  histogram("test.reset_hist").record(5);
  reset_metrics();
  const json::Value snap = metrics_json();
  EXPECT_EQ(counter_value(snap, "test.reset_counter"), 0.0);
  EXPECT_EQ(snap.at("gauges").at("test.reset_gauge").as_number(), 0.0);
  EXPECT_EQ(
      snap.at("histograms").at("test.reset_hist").at("count").as_number(),
      0.0);
}

TEST(Metrics, DocumentCarriesSchemaAndSections) {
  const json::Value doc = metrics_document();
  EXPECT_EQ(doc.at("schema").as_string(), "mbcr-metrics-v1");
  EXPECT_TRUE(doc.at("counters").is_object());
  EXPECT_TRUE(doc.at("gauges").is_object());
  EXPECT_TRUE(doc.at("histograms").is_object());
  // The document is valid, round-trippable JSON.
  EXPECT_EQ(json::parse(doc.dump(2)).dump(2), doc.dump(2));
}

TEST(Metrics, ConcurrentAddsMergeExactly) {
  // The correctness claim of the sharded design: adds from many threads
  // are never lost or double-counted, even while other threads register
  // new metrics (growing shard block lists) and take snapshots.
  EnabledScope scope(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20'000;

  std::atomic<bool> stop_snapshots{false};
  std::thread snapshotter([&] {
    while (!stop_snapshots.load(std::memory_order_relaxed)) {
      const json::Value snap = metrics_json();  // must never crash or race
      ASSERT_TRUE(snap.at("counters").is_object());
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      const Counter shared = counter("test.concurrent.shared");
      const Counter mine =
          counter("test.concurrent.thread" + std::to_string(t));
      const Histogram hist = histogram("test.concurrent.hist");
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        shared.add(1);
        mine.add(2);
        hist.record(i % 8);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop_snapshots.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const json::Value snap = metrics_json();
  EXPECT_EQ(counter_value(snap, "test.concurrent.shared"),
            static_cast<double>(kThreads * kAddsPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counter_value(snap,
                            "test.concurrent.thread" + std::to_string(t)),
              static_cast<double>(2 * kAddsPerThread));
  }
  const json::Value& hist =
      snap.at("histograms").at("test.concurrent.hist");
  EXPECT_EQ(hist.at("count").as_number(),
            static_cast<double>(kThreads * kAddsPerThread));
}

TEST(Metrics, SnapshotDeltaReportsOnlyGrowth) {
  EnabledScope scope(true);
  counter("test.delta.stable").add(5);
  counter("test.delta.grows").add(2);
  const CounterSnapshot base = snapshot_counters();
  counter("test.delta.grows").add(9);

  const auto delta = snapshot_counters().delta_since(base);
  // Only grown counters appear, name-sorted; the stable one is absent.
  std::uint64_t grows = 0;
  for (const auto& [name, growth] : delta) {
    EXPECT_NE(name, "test.delta.stable");
    if (name == "test.delta.grows") grows = growth;
  }
  EXPECT_EQ(grows, 9u);
  for (std::size_t i = 1; i < delta.size(); ++i) {
    EXPECT_LT(delta[i - 1].first, delta[i].first);
  }
  // A snapshot is a fixed point against itself.
  EXPECT_TRUE(base.delta_since(base).empty());
}

TEST(Metrics, SnapshotDeltaToleratesLateRegistration) {
  // The guided fuzzer's per-case bracket: counters that register AFTER
  // the base snapshot (a per-oracle-name "fuzz.oracle.*" family, a new
  // opcode tally, a shard born on a worker thread mid-run) must count
  // from zero in the delta — not crash, not be dropped.
  EnabledScope scope(true);
  counter("test.delta.preexisting").add(1);
  const CounterSnapshot base = snapshot_counters();

  // Register + bump from a brand-new thread, so both the metric AND its
  // only shard postdate the base snapshot.
  std::thread late([] { counter("test.delta.born_late").add(13); });
  late.join();

  const auto delta = snapshot_counters().delta_since(base);
  std::uint64_t born_late = 0;
  for (const auto& [name, growth] : delta) {
    if (name == "test.delta.born_late") born_late = growth;
  }
  EXPECT_EQ(born_late, 13u);
}

TEST(Metrics, LateRegistrationIsVisibleToEarlyShards) {
  // A thread whose shard predates a metric's registration must still
  // contribute once it writes that slot (shards grow on demand).
  EnabledScope scope(true);
  counter("test.late.warmup").add(1);  // ensure this thread owns a shard
  std::thread other([] {
    counter("test.late.registered_elsewhere").add(7);
  });
  other.join();
  counter("test.late.registered_elsewhere").add(3);
  EXPECT_EQ(counter_value(metrics_json(), "test.late.registered_elsewhere"),
            10.0);
}

#else  // MBCR_OBS_DISABLED

TEST(Metrics, CompiledOutIsInert) {
  EXPECT_FALSE(kCompiledIn);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_FALSE(enabled());  // the gate cannot be armed
  counter("test.noop").add(5);
  const json::Value snap = metrics_json();
  EXPECT_TRUE(snap.at("counters").as_object().empty());
}

#endif  // MBCR_OBS_DISABLED

}  // namespace
}  // namespace mbcr::obs
