// End-to-end CLI observability pins, run against the real `mbcr` binary
// (path injected by CMake as MBCR_MBCR_BINARY; the obs_tests target
// depends on mbcr_cli so the binary always exists):
//
//   - stdout purity: with --json -, --progress and --metrics-json FILE all
//     active, stdout is exactly one parseable JSON document — progress and
//     "[x written to ...]" diagnostics live on stderr only.
//   - the emitted metrics/trace files are valid JSON with the promised
//     schema/phases.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace mbcr {
namespace {

#if defined(__unix__) && defined(MBCR_MBCR_BINARY)

struct CommandResult {
  int exit_code = -1;
  std::string out;
};

/// Runs `cmd` under /bin/sh, capturing stdout (callers route stderr).
CommandResult run_command(const std::string& cmd) {
  CommandResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.out.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

json::Value parse_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return json::parse(buffer.str());
}

TEST(CliObs, AnalyzeStdoutIsASingleJsonDocumentUnderFullInstrumentation) {
  const std::string metrics_path = temp_path("mbcr_cli_obs_metrics.json");
  const std::string trace_path = temp_path("mbcr_cli_obs_trace.json");
  const std::string cmd = std::string(MBCR_MBCR_BINARY) +
                          " analyze --suite bs --mode pub_tac" +
                          " --max-runs 2000 --tac-cap 2000" +
                          " --json - --progress true" +
                          " --metrics-json " + metrics_path +
                          " --trace-json " + trace_path + " 2>/dev/null";
  const CommandResult result = run_command(cmd);
  ASSERT_EQ(result.exit_code, 0) << cmd;

  // json::parse accepts exactly one document (trailing whitespace only),
  // so this line IS the stdout-purity pin: any stray progress line,
  // diagnostic, or second document on stdout fails the parse.
  const json::Value doc = json::parse(result.out);
  EXPECT_EQ(doc.at("schema").as_string(), "mbcr-study-v6");

  // The instrumented run must also surface its own cost: the optional v5
  // blocks are present when collection was armed — which requires the
  // layer compiled in (an -DMBCR_OBS=OFF binary accepts the flags but
  // writes empty snapshots, and the default document stays block-free).
  if (obs::kCompiledIn) {
    ASSERT_NE(doc.find("accounting"), nullptr);
    ASSERT_NE(doc.find("metrics"), nullptr);
  } else {
    EXPECT_EQ(doc.find("accounting"), nullptr);
    EXPECT_EQ(doc.find("metrics"), nullptr);
  }

  const json::Value metrics = parse_file(metrics_path);
  EXPECT_EQ(metrics.at("schema").as_string(), "mbcr-metrics-v1");
  const json::Value trace = parse_file(trace_path);
  const json::Array& events = trace.at("traceEvents").as_array();
  if (obs::kCompiledIn) {
    EXPECT_NE(metrics.at("counters").find("campaign.runs"), nullptr);
    EXPECT_NE(metrics.at("counters").find("convergence.samples"), nullptr);
    EXPECT_NE(metrics.at("counters").find("replay.single_level.runs"),
              nullptr);
    EXPECT_GT(events.size(), 1u);
    bool saw_study = false;
    bool saw_campaign = false;
    for (const json::Value& ev : events) {
      const json::Value* name = ev.find("name");
      if (name == nullptr) continue;
      saw_study |= name->as_string() == "study";
      saw_campaign |= name->as_string() == "campaign";
    }
    EXPECT_TRUE(saw_study);
    EXPECT_TRUE(saw_campaign);
  }

  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliObs, MeasureCsvStdoutStaysMachineReadableWithProgressOn) {
  const std::string cmd = std::string(MBCR_MBCR_BINARY) +
                          " measure --suite bs --runs 100 --csv -" +
                          " --progress true 2>/dev/null";
  const CommandResult result = run_command(cmd);
  ASSERT_EQ(result.exit_code, 0) << cmd;
  // First line is the CSV header and nothing else precedes it.
  EXPECT_EQ(result.out.rfind("program,input,run,cycles\n", 0), 0u)
      << "stdout does not start with the CSV header:\n"
      << result.out.substr(0, 200);
}

#else

TEST(CliObs, SkippedWithoutPosixPopen) { GTEST_SKIP(); }

#endif

}  // namespace
}  // namespace mbcr
