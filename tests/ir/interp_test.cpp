#include "ir/interp.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"

namespace mbcr::ir {
namespace {

Program sum_program() {
  // x = sum of a[0..3]
  Program p;
  p.name = "sum";
  p.arrays.push_back({"a", 4, {10, 20, 30, 40}});
  p.scalars = {"x", "i"};
  p.body = seq({
      assign("x", cst(0)),
      for_loop("i", cst(0), var("i") < cst(4), 1,
               assign("x", var("x") + ld("a", var("i"))), 4),
  });
  return p;
}

TEST(Interp, ComputesCorrectResult) {
  const ExecResult r = lower_and_execute(sum_program(), {});
  EXPECT_EQ(r.env.scalars.at("x"), 100);
}

TEST(Interp, InputVectorOverridesState) {
  InputVector in;
  in.arrays["a"] = {1, 2, 3, 4};
  const ExecResult r = lower_and_execute(sum_program(), in);
  EXPECT_EQ(r.env.scalars.at("x"), 10);
}

TEST(Interp, EmitsInstructionAndDataAccesses) {
  const ExecResult r = lower_and_execute(sum_program(), {});
  std::size_t ifetches = 0;
  std::size_t loads = 0;
  for (const Access& a : r.trace.accesses) {
    if (a.kind == AccessKind::kIFetch) ++ifetches;
    if (a.kind == AccessKind::kLoad) ++loads;
  }
  EXPECT_GT(ifetches, 0u);
  EXPECT_EQ(loads, 4u);  // one array read per iteration
}

TEST(Interp, TraceIsDeterministic) {
  // Same program INSTANCE: re-execution is bit-identical. (Two factory
  // calls build distinct statement ids, so their tokens differ by design —
  // tokens are only comparable within one program family.)
  const Program p = sum_program();
  const ExecResult r1 = lower_and_execute(p, {});
  const ExecResult r2 = lower_and_execute(p, {});
  EXPECT_EQ(r1.trace.accesses, r2.trace.accesses);
  EXPECT_EQ(r1.tokens, r2.tokens);
}

TEST(Interp, StoreEmitsStoreAccess) {
  Program p;
  p.name = "st";
  p.arrays.push_back({"a", 2, {}});
  p.scalars = {};
  p.body = store("a", cst(1), cst(42));
  const ExecResult r = lower_and_execute(p, {});
  bool found_store = false;
  for (const Access& a : r.trace.accesses) {
    if (a.kind == AccessKind::kStore) found_store = true;
  }
  EXPECT_TRUE(found_store);
  EXPECT_EQ(r.env.arrays.at("a")[1], 42);
}

TEST(Interp, IfTakesCorrectBranchAndRecordsPath) {
  Program p;
  p.name = "br";
  p.scalars = {"c", "x"};
  p.body = if_else(var("c") > cst(0), assign("x", cst(1)),
                   assign("x", cst(2)));
  InputVector pos;
  pos.scalars["c"] = 5;
  InputVector neg;
  neg.scalars["c"] = -5;
  const ExecResult rp = lower_and_execute(p, pos);
  const ExecResult rn = lower_and_execute(p, neg);
  EXPECT_EQ(rp.env.scalars.at("x"), 1);
  EXPECT_EQ(rn.env.scalars.at("x"), 2);
  ASSERT_EQ(rp.path.events.size(), 1u);
  EXPECT_EQ(rp.path.events[0].second, 1u);
  EXPECT_EQ(rn.path.events[0].second, 0u);
}

TEST(Interp, WhileLoopRecordsTripCount) {
  Program p;
  p.name = "wh";
  p.scalars = {"x"};
  p.body = seq({
      assign("x", cst(0)),
      while_loop(var("x") < cst(3), assign("x", var("x") + cst(1)), 10),
  });
  const ExecResult r = lower_and_execute(p, {});
  // Last event is the loop with 3 trips.
  ASSERT_FALSE(r.path.events.empty());
  EXPECT_EQ(r.path.events.back().second, 3u);
}

TEST(Interp, LoopBoundViolationThrows) {
  Program p;
  p.name = "bad";
  p.scalars = {"x"};
  p.body = seq({
      assign("x", cst(0)),
      while_loop(var("x") < cst(100), assign("x", var("x") + cst(1)), 5),
  });
  EXPECT_THROW(lower_and_execute(p, {}), ExecError);
}

TEST(Interp, DivisionByZeroThrows) {
  Program p;
  p.name = "div";
  p.scalars = {"x", "y"};
  p.body = assign("x", cst(1) / var("y"));
  EXPECT_THROW(lower_and_execute(p, {}), ExecError);
  InputVector ok;
  ok.scalars["y"] = 2;
  EXPECT_NO_THROW(lower_and_execute(p, ok));
}

TEST(Interp, OutOfBoundsIndexThrows) {
  Program p;
  p.name = "oob";
  p.arrays.push_back({"a", 4, {}});
  p.scalars = {"i"};
  p.body = assign("i", ld("a", cst(4)));
  EXPECT_THROW(lower_and_execute(p, {}), ExecError);
  Program p2 = p;
  p2.body = assign("i", ld("a", cst(0) - cst(1)));
  EXPECT_THROW(lower_and_execute(p2, {}), ExecError);
}

TEST(Interp, UndeclaredInputRejected) {
  InputVector in;
  in.scalars["nope"] = 1;
  EXPECT_THROW(lower_and_execute(sum_program(), in), ExecError);
  InputVector in2;
  in2.arrays["missing"] = {1};
  EXPECT_THROW(lower_and_execute(sum_program(), in2), ExecError);
  InputVector in3;
  in3.arrays["a"] = {1, 2, 3, 4, 5};  // longer than declared
  EXPECT_THROW(lower_and_execute(sum_program(), in3), ExecError);
}

TEST(Interp, SelectEvaluatesBothSides) {
  Program p;
  p.name = "sel";
  p.arrays.push_back({"a", 2, {5, 9}});
  p.scalars = {"c", "x"};
  p.body = assign("x", select(var("c"), ld("a", cst(0)), ld("a", cst(1))));
  InputVector in;
  in.scalars["c"] = 1;
  const ExecResult r = lower_and_execute(p, in);
  EXPECT_EQ(r.env.scalars.at("x"), 5);
  std::size_t loads = 0;
  for (const Access& a : r.trace.accesses) {
    if (a.kind == AccessKind::kLoad) ++loads;
  }
  EXPECT_EQ(loads, 2u);  // both arms touch memory: predication, not a branch
}

TEST(Interp, GhostRegionLeavesStateUntouchedButEmitsAccesses) {
  Program p;
  p.name = "gh";
  p.arrays.push_back({"a", 2, {7, 8}});
  p.scalars = {"x"};
  p.body = seq({
      assign("x", cst(1)),
      ghost(seq({assign("x", cst(99)), store("a", cst(0), cst(55))})),
  });
  const ExecResult r = lower_and_execute(p, {});
  EXPECT_EQ(r.env.scalars.at("x"), 1);       // ghost write discarded
  EXPECT_EQ(r.env.arrays.at("a")[0], 7);     // ghost store discarded
  bool ghost_store_as_load = false;
  for (const Access& a : r.trace.accesses) {
    if (a.kind == AccessKind::kLoad) ghost_store_as_load = true;
    EXPECT_NE(a.kind, AccessKind::kStore);  // store demoted inside ghost
  }
  EXPECT_TRUE(ghost_store_as_load);
}

TEST(Interp, GhostBranchDecisionsNotInPath) {
  Program p;
  p.name = "ghp";
  p.scalars = {"x"};
  p.body = seq({
      assign("x", cst(1)),
      ghost(if_else(var("x") > cst(0), assign("x", cst(2)),
                    assign("x", cst(3)))),
  });
  const ExecResult r = lower_and_execute(p, {});
  EXPECT_TRUE(r.path.events.empty());  // only the ghost if executed
  EXPECT_EQ(r.env.scalars.at("x"), 1);
}

TEST(Interp, PadToMaxRunsGhostIterations) {
  Program p;
  p.name = "pad";
  p.arrays.push_back({"a", 8, {}});
  p.scalars = {"i", "n"};
  const StmtPtr body = store("a", var("i"), var("i"));
  const StmtPtr loop =
      for_loop("i", cst(0), var("i") < var("n"), 1, body, 8);
  loop->pad_to_max = true;
  p.body = loop;
  InputVector in;
  in.scalars["n"] = 3;

  const ExecResult r = lower_and_execute(p, in);
  // Natural iterations write a[0..2]; ghost iterations touch a[3..7]
  // without writing.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r.env.arrays.at("a")[i], i);
  for (int i = 3; i < 8; ++i) EXPECT_EQ(r.env.arrays.at("a")[i], 0);
  std::size_t data_accesses = 0;
  for (const Access& a : r.trace.accesses) {
    if (a.kind != AccessKind::kIFetch) ++data_accesses;
  }
  EXPECT_EQ(data_accesses, 8u);  // one per padded iteration
  // Path signature still records the NATURAL trip count.
  EXPECT_EQ(r.path.events.back().second, 3u);
}

TEST(Interp, PaddedTraceLengthIsInputInvariant) {
  Program p;
  p.name = "pad2";
  p.arrays.push_back({"a", 8, {}});
  p.scalars = {"i", "n"};
  const StmtPtr loop = for_loop("i", cst(0), var("i") < var("n"), 1,
                                store("a", var("i"), cst(1)), 8);
  loop->pad_to_max = true;
  p.body = loop;
  std::size_t sizes[3];
  int k = 0;
  for (Value n : {1, 4, 8}) {
    InputVector in;
    in.scalars["n"] = n;
    sizes[k++] = lower_and_execute(p, in).trace.size();
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[1], sizes[2]);
}

TEST(Interp, StepBudgetGuardsRunaways) {
  Program p;
  p.name = "guard";
  p.scalars = {"i"};
  p.body = for_loop("i", cst(0), var("i") < cst(1000), 1, nop(), 1000);
  ExecOptions opt;
  opt.max_leaf_steps = 100;
  EXPECT_THROW(lower_and_execute(p, {}, opt), ExecError);
}

TEST(Printer, RendersProgram) {
  const std::string s = to_string(sum_program());
  EXPECT_NE(s.find("program sum"), std::string::npos);
  EXPECT_NE(s.find("for (i = 0;"), std::string::npos);
  EXPECT_NE(s.find("a[4]"), std::string::npos);
}

}  // namespace
}  // namespace mbcr::ir
