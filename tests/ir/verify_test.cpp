// The static bytecode verifier (ir/verify) as a subsystem.
//
// Rejection: hand-corrupted bytecode — bad jump targets, out-of-range
// operand indices, stack underflow, a lying max_stack, unbalanced ghost
// frames, broken heap tiling — must be refused with a diagnostic that
// names the op and the reason. Acceptance: every suite kernel (original
// and pubbed) and 500 randprog seeds verify clean, before and after
// elision. Feedback: elided (unchecked) execution stays bit-identical to
// checked execution and to the tree-walker, and the validating VM traps a
// deliberately-narrowed proof at the exact access that escapes it.
#include "ir/verify.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ir/bytecode.hpp"
#include "ir/interp.hpp"
#include "ir/lower.hpp"
#include "ir/randprog.hpp"
#include "ir/vm.hpp"
#include "pub/pub_transform.hpp"
#include "suite/malardalen.hpp"
#include "util/rng.hpp"

namespace mbcr::ir {
namespace {

Program sum_program() {
  Program p;
  p.name = "sum";
  p.arrays.push_back({"a", 4, {10, 20, 30, 40}});
  p.scalars = {"x", "i"};
  p.body = seq({
      assign("x", cst(0)),
      for_loop("i", cst(0), var("i") < cst(4), 1,
               assign("x", var("x") + ld("a", var("i"))), 4),
  });
  return p;
}

BytecodeProgram compile_sum() {
  const Program p = sum_program();
  return compile(p, lower(p));
}

/// Index of the first op with `code`, or fails the test.
std::uint32_t first_op(const BytecodeProgram& bc, OpCode code) {
  for (std::uint32_t i = 0; i < bc.ops.size(); ++i) {
    if (bc.ops[i].code == code) return i;
  }
  ADD_FAILURE() << "no " << to_string(code) << " op in " << bc.name;
  return 0;
}

/// The verdict must be a rejection and some diagnostic must mention
/// `needle` — the "precise diagnostics" contract.
void expect_rejected(const BytecodeProgram& bc, const std::string& needle) {
  const VerifyResult result = verify(bc);
  ASSERT_FALSE(result.ok()) << "expected a rejection mentioning \"" << needle
                            << "\", got a clean verdict";
  EXPECT_NE(result.describe().find(needle), std::string::npos)
      << "diagnostics lack \"" << needle << "\":\n"
      << result.describe();
}

// --- pass 1: structural rejection ----------------------------------------

TEST(VerifyStructural, AcceptsTheHealthyProgram) {
  const VerifyResult result = verify(compile_sum());
  EXPECT_TRUE(result.ok()) << result.describe();
  EXPECT_TRUE(result.dead_ops.empty());
  EXPECT_EQ(result.elem_ops, 1u);
  EXPECT_EQ(result.provable.size(), 1u);
}

TEST(VerifyStructural, RejectsTheEmptyOpStream) {
  BytecodeProgram bc = compile_sum();
  bc.ops.clear();
  expect_rejected(bc, "empty op stream");
}

TEST(VerifyStructural, RejectsAJumpTargetPastTheEnd) {
  BytecodeProgram bc = compile_sum();
  const std::uint32_t jump = first_op(bc, OpCode::kJump);
  bc.ops[jump].a = static_cast<std::uint32_t>(bc.ops.size());  // one past
  expect_rejected(bc, "op " + std::to_string(jump) + ": jump target " +
                          std::to_string(bc.ops.size()) + " out of range");
}

TEST(VerifyStructural, RejectsOutOfRangeOperandIndices) {
  {  // constant table
    BytecodeProgram bc = compile_sum();
    bc.ops[first_op(bc, OpCode::kPushConst)].a = 999;
    expect_rejected(bc, "constant index 999 out of range");
  }
  {  // scalar slots
    BytecodeProgram bc = compile_sum();
    bc.ops[first_op(bc, OpCode::kStoreScalar)].a = 7;
    expect_rejected(bc, "scalar slot index 7 out of range [0, 2)");
  }
  {  // array slots (the "index OOB" fixture: the slot, not the element)
    BytecodeProgram bc = compile_sum();
    bc.ops[first_op(bc, OpCode::kLoadElem)].a = 3;
    expect_rejected(bc, "array slot index 3 out of range [0, 1)");
  }
}

TEST(VerifyStructural, RejectsFallthroughOffTheEnd) {
  BytecodeProgram bc = compile_sum();
  ASSERT_EQ(bc.ops.back().code, OpCode::kHalt);
  bc.ops.pop_back();
  expect_rejected(bc, "falls through off the end");
}

TEST(VerifyStructural, RejectsABrokenHeapTiling) {
  BytecodeProgram bc = compile_sum();
  bc.arrays[0].offset = 2;  // window no longer starts where the heap does
  expect_rejected(bc, "heap window starts at 2, expected 0");

  BytecodeProgram shrunk = compile_sum();
  shrunk.heap_init.pop_back();
  expect_rejected(shrunk, "array windows cover 4 heap cells, heap_init has 3");
}

// --- pass 2: dataflow rejection -------------------------------------------

TEST(VerifyDataflow, RejectsStackUnderflow) {
  BytecodeProgram bc = compile_sum();
  // An kAdd as the very first op finds an empty operand stack.
  bc.ops.insert(bc.ops.begin(), Op{OpCode::kAdd, 0, 0});
  expect_rejected(bc, "operand stack underflow: kAdd needs 2 value(s)");
}

TEST(VerifyDataflow, RejectsALyingMaxStack) {
  BytecodeProgram bc = compile_sum();
  const std::uint32_t honest = bc.max_stack;
  bc.max_stack = honest + 1;  // an over-claim is rejected too: exactness
  expect_rejected(bc, "declared max_stack " + std::to_string(honest + 1) +
                          " != computed high-water " + std::to_string(honest));
}

TEST(VerifyDataflow, RejectsUnbalancedGhostFrames) {
  {  // an exit with no matching enter
    BytecodeProgram bc = compile_sum();
    bc.ops.insert(bc.ops.begin(), Op{OpCode::kGhostExit, 0, 0});
    expect_rejected(bc, "ghost exit with no open ghost frame");
  }
  {  // an enter that never exits: the final halt sees an open frame
    BytecodeProgram bc = compile_sum();
    ASSERT_EQ(bc.ops.back().code, OpCode::kHalt);
    bc.ops.insert(bc.ops.end() - 1, Op{OpCode::kGhostEnter, 0, 0});
    expect_rejected(bc, "halt inside 1 open ghost frame(s)");
  }
}

TEST(VerifyDataflow, FlagsStaticallyDeadOpsWithoutRejecting) {
  BytecodeProgram bc = compile_sum();
  // Jump over a freshly-inserted op: unreachable, flagged, not fatal.
  bc.ops.insert(bc.ops.begin(), Op{OpCode::kJump, 2, 0});
  bc.ops.insert(bc.ops.begin() + 1, Op{OpCode::kGhostExit, 0, 0});
  // All jump/branch targets after the insertion point moved by two.
  for (std::uint32_t i = 2; i < bc.ops.size(); ++i) {
    Op& op = bc.ops[i];
    switch (op.code) {
      case OpCode::kJump:
      case OpCode::kBranch:
        op.a += 2;
        break;
      case OpCode::kLoopNext:
      case OpCode::kPadEnter:
      case OpCode::kPadNext:
        op.b += 2;
        break;
      default:
        break;
    }
  }
  const VerifyResult result = verify(bc);
  EXPECT_TRUE(result.ok()) << result.describe();
  ASSERT_EQ(result.dead_ops.size(), 1u);
  EXPECT_EQ(result.dead_ops[0], 1u);
}

// --- acceptance: the suite and the generator ------------------------------

TEST(VerifyAcceptance, EverySuiteKernelVerifiesCleanCheckedAndElided) {
  for (const suite::SuiteEntry& entry : suite::all()) {
    const suite::SuiteBenchmark bench = entry.make();
    for (const bool pub : {false, true}) {
      const Program program =
          pub ? pub::apply_pub(bench.program) : bench.program;
      const std::string where =
          std::string(entry.name) + (pub ? " pubbed" : " original");
      BytecodeProgram bc = compile(program, lower(program));
      const VerifyResult facts = verify(bc);
      EXPECT_TRUE(facts.ok()) << where << ":\n" << facts.describe();
      EXPECT_EQ(facts.computed_max_stack, bc.max_stack) << where;

      apply_elision(bc, facts);
      const VerifyResult audit = verify(bc);
      EXPECT_TRUE(audit.ok())
          << where << " after elision:\n" << audit.describe();
    }
  }
}

TEST(VerifyAcceptance, FiveHundredRandprogSeedsVerifyClean) {
  RandProgConfig cfg;
  cfg.scalar_alias_prob = 0.25;  // counters double as data registers
  std::size_t proven = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Xoshiro256 rng(mix64(0x5eed, seed));
    const Program program = random_program(rng, cfg);
    const Program pubbed = pub::apply_pub(program);
    for (const Program* p : {&program, &pubbed}) {
      BytecodeProgram bc = compile(*p, lower(*p));
      const VerifyResult facts = verify(bc);
      ASSERT_TRUE(facts.ok())
          << "seed " << seed << (p == &pubbed ? " pubbed" : " original")
          << ":\n"
          << facts.describe();
      proven += facts.provable.size();
      apply_elision(bc, facts);
      const VerifyResult audit = verify(bc);
      ASSERT_TRUE(audit.ok())
          << "seed " << seed << (p == &pubbed ? " pubbed" : " original")
          << " after elision:\n"
          << audit.describe();
    }
  }
  // randprog masks every element index, so the interval analysis must be
  // proving accesses in bulk — elision over the generator is not vacuous.
  EXPECT_GT(proven, 500u);
}

// --- feedback: elision is a no-op on observable behaviour ------------------

/// One engine's observation: result or ExecError text.
struct Observed {
  bool threw = false;
  std::string error;
  ExecResult result;
};

template <typename Fn>
Observed observe(Fn&& fn) {
  Observed o;
  try {
    o.result = fn();
  } catch (const ExecError& e) {
    o.threw = true;
    o.error = e.what();
  }
  return o;
}

void expect_same(const Observed& a, const Observed& b,
                 const std::string& where) {
  ASSERT_EQ(a.threw, b.threw)
      << where << ": engines disagree on whether the run throws (\""
      << a.error << "\" vs \"" << b.error << "\")";
  if (a.threw) {
    EXPECT_EQ(a.error, b.error) << where;
    return;
  }
  EXPECT_EQ(a.result.trace.accesses, b.result.trace.accesses) << where;
  EXPECT_EQ(a.result.tokens, b.result.tokens) << where;
  EXPECT_EQ(a.result.path, b.result.path) << where;
  EXPECT_EQ(a.result.leaf_steps, b.result.leaf_steps) << where;
  EXPECT_EQ(a.result.env.scalars, b.result.env.scalars) << where;
  EXPECT_EQ(a.result.env.arrays, b.result.env.arrays) << where;
}

/// Checked VM, elided VM, elided validating VM and the tree-walker must
/// all observe the same run.
void expect_elision_is_identity(const Program& program,
                                const InputVector& input,
                                const std::string& where) {
  const Linked linked = lower(program);
  const BytecodeProgram checked = compile(program, linked);
  BytecodeProgram elided = checked;
  const VerifyResult facts = verify(elided);
  ASSERT_TRUE(facts.ok()) << where << ":\n" << facts.describe();
  apply_elision(elided, facts);

  const Observed tree =
      observe([&] { return execute_tree(program, linked, input, {}); });
  expect_same(tree, observe([&] { return vm::run(checked, input, {}); }),
              where + " [checked vm]");
  expect_same(tree, observe([&] { return vm::run(elided, input, {}); }),
              where + " [elided vm]");
  expect_same(tree,
              observe([&] { return vm::run_validating(elided, input, {}); }),
              where + " [validating vm]");
}

TEST(VerifyElision, SuiteKernelsRunBitIdenticalAfterElision) {
  for (const suite::SuiteEntry& entry : suite::all()) {
    const suite::SuiteBenchmark bench = entry.make();
    const Program pubbed = pub::apply_pub(bench.program);
    std::vector<InputVector> inputs = bench.path_inputs;
    inputs.push_back(bench.default_input);
    for (const InputVector& in : inputs) {
      expect_elision_is_identity(bench.program, in,
                                 bench.name + " [" + in.label +
                                     "] original");
      expect_elision_is_identity(pubbed, in,
                                 bench.name + " [" + in.label + "] pubbed");
    }
  }
}

TEST(VerifyElision, RandprogSeedsRunBitIdenticalAfterElision) {
  RandProgConfig cfg;
  cfg.scalar_alias_prob = 0.25;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Xoshiro256 rng(mix64(0xe11de, seed));
    const Program program = random_program(rng, cfg);
    const InputVector in = random_input(program, rng, cfg);
    expect_elision_is_identity(program, in,
                               "seed " + std::to_string(seed));
  }
}

TEST(VerifyElision, ValidatingVmTrapsADeliberatelyNarrowedProof) {
  // Narrow the sum kernel's single proof to [0, 0]: re-verification must
  // reject the claim statically, and the validating VM must trap at the
  // first access outside it (index 1) while the plain VM — which trusts
  // proofs by design — still runs.
  const Program p = sum_program();
  BytecodeProgram bc = compile(p, lower(p));
  const VerifyResult facts = verify(bc);
  ASSERT_EQ(facts.provable.size(), 1u);
  ASSERT_EQ(apply_elision(bc, facts), 1u);
  ASSERT_EQ(bc.proofs.size(), 1u);
  bc.proofs[0].hi = 0;

  expect_rejected(bc, "escapes the recorded elision proof [0, 0]");
  EXPECT_NO_THROW(vm::run(bc, {}));
  try {
    vm::run_validating(bc, {});
    FAIL() << "expected the proof audit to trap";
  } catch (const ExecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("verify: index 1 escapes the proven range [0, 0]"),
              std::string::npos)
        << what;
  }
}

TEST(VerifyElision, CompileVerifiedThrowsVerifyErrorOnRejectedBytecode) {
  // compile_verified on a healthy program succeeds and elides...
  const Program p = sum_program();
  const BytecodeProgram bc = compile_verified(p, lower(p));
  EXPECT_EQ(bc.count_ops(OpCode::kLoadElemU), 1u);
  EXPECT_EQ(bc.count_ops(OpCode::kLoadElem), 0u);
  // ...and the error type exists for callers that gate on it (the actual
  // throw path needs a miscompile, pinned by the MBCR_VERIFY_FAULT build).
  static_assert(std::is_base_of_v<ExecError, VerifyError>);
}

}  // namespace
}  // namespace mbcr::ir
