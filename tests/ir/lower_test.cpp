#include "ir/lower.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mbcr::ir {
namespace {

Program tiny_program() {
  Program p;
  p.name = "tiny";
  p.arrays.push_back({"a", 8, {}});
  p.scalars = {"x", "i"};
  p.body = seq({
      assign("x", cst(0)),
      for_loop("i", cst(0), var("i") < cst(4), 1,
               store("a", var("i"), var("x") + var("i")), 4),
  });
  return p;
}

TEST(Lower, AssignsCodeSpansToAllBlocks) {
  const Program p = tiny_program();
  const Linked linked = lower(p);
  const StmtPtr& asg = p.body->children[0];
  const StmtPtr& loop = p.body->children[1];
  EXPECT_TRUE(linked.code.contains(Linked::slot_self(asg->id)));
  EXPECT_TRUE(linked.code.contains(Linked::slot_init(loop->id)));
  EXPECT_TRUE(linked.code.contains(Linked::slot_cond(loop->id)));
  EXPECT_TRUE(linked.code.contains(Linked::slot_step(loop->id)));
  EXPECT_TRUE(
      linked.code.contains(Linked::slot_self(loop->children[0]->id)));
}

TEST(Lower, CodeSpansAreDisjointAndOrdered) {
  const Program p = tiny_program();
  const Linked linked = lower(p, 0x1000, 0x8000);
  std::set<std::pair<Addr, Addr>> spans;
  for (const auto& [key, span] : linked.code) {
    EXPECT_GE(span.base, Addr{0x1000});
    EXPECT_GT(span.n_instr, 0u);
    spans.insert({span.base, span.base + span.n_instr * kInstrBytes});
  }
  Addr prev_end = 0;
  for (const auto& [begin, end] : spans) {
    EXPECT_GE(begin, prev_end);
    prev_end = end;
  }
}

TEST(Lower, InstructionCountTracksExpressionSize) {
  Program p;
  p.name = "sz";
  p.scalars = {"x"};
  const StmtPtr small = assign("x", cst(1));
  const StmtPtr big = assign("x", (var("x") + cst(1)) * (var("x") - cst(2)));
  p.body = seq({small, big});
  const Linked linked = lower(p);
  EXPECT_LT(linked.span(Linked::slot_self(small->id)).n_instr,
            linked.span(Linked::slot_self(big->id)).n_instr);
}

TEST(Lower, ArraysGetDataAddresses) {
  Program p;
  p.name = "arr";
  p.arrays.push_back({"a", 4, {}});
  p.arrays.push_back({"b", 4, {}});
  p.scalars = {};
  p.body = seq({store("a", cst(0), cst(1)), store("b", cst(0), cst(2))});
  const Linked linked = lower(p, 0x1000, 0x8000);
  EXPECT_EQ(linked.array_base.at("a"), Addr{0x8000});
  EXPECT_EQ(linked.array_base.at("b"), Addr{0x8010});  // 4 * 4 bytes later
}

TEST(Lower, DataLayoutIndependentOfCodeSize) {
  // Two programs with identical arrays but different bodies place arrays
  // identically — the property the PUB token check relies on.
  Program p1 = tiny_program();
  Program p2 = tiny_program();
  p2.body = seq({p2.body, assign("x", var("x") + cst(1))});
  const Linked l1 = lower(p1);
  const Linked l2 = lower(p2);
  EXPECT_EQ(l1.array_base.at("a"), l2.array_base.at("a"));
}

TEST(Lower, ValidatesProgram) {
  Program p;
  p.name = "bad";
  p.scalars = {"x"};
  p.body = assign("y", cst(1));  // undeclared scalar
  EXPECT_THROW(lower(p), std::invalid_argument);
}

TEST(Validate, CatchesCommonMistakes) {
  Program p;
  p.name = "v";
  p.scalars = {"x"};
  p.arrays.push_back({"a", 4, {}});

  p.body = while_loop(var("x") < cst(3), assign("x", var("x") + cst(1)), 0);
  EXPECT_THROW(validate(p), std::invalid_argument);  // missing bound

  p.body = store("nope", cst(0), cst(1));
  EXPECT_THROW(validate(p), std::invalid_argument);  // unknown array

  p.body = assign("x", ld("a", var("zz")));
  EXPECT_THROW(validate(p), std::invalid_argument);  // unknown scalar

  p.body = assign("x", cst(0));
  EXPECT_NO_THROW(validate(p));

  Program dup = p;
  dup.arrays.push_back({"a", 4, {}});
  EXPECT_THROW(validate(dup), std::invalid_argument);  // duplicate array
}

}  // namespace
}  // namespace mbcr::ir
