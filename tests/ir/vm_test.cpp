// The bytecode VM pinned to the tree-walking interpreter.
//
// Compile-time checks (slot resolution, ghost/pad lowering, unbound-name
// errors), then the differential battery: every suite kernel (original and
// pubbed, every registered input) and 200 randprog seeds must produce
// bit-identical ExecResults — trace, env, tokens, path signature and
// leaf_steps — and byte-identical ExecError texts on every failure mode
// (division by zero, out-of-bounds, loop bound, step budget).
#include "ir/vm.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "ir/bytecode.hpp"
#include "ir/interp.hpp"
#include "ir/lower.hpp"
#include "ir/randprog.hpp"
#include "pub/pub_transform.hpp"
#include "suite/malardalen.hpp"
#include "util/rng.hpp"

namespace mbcr::ir {
namespace {

Program sum_program() {
  Program p;
  p.name = "sum";
  p.arrays.push_back({"a", 4, {10, 20, 30, 40}});
  p.scalars = {"x", "i"};
  p.body = seq({
      assign("x", cst(0)),
      for_loop("i", cst(0), var("i") < cst(4), 1,
               assign("x", var("x") + ld("a", var("i"))), 4),
  });
  return p;
}

/// One engine's observation: result or ExecError text.
struct Observed {
  bool threw = false;
  std::string error;
  ExecResult result;
};

template <typename Fn>
Observed observe(Fn&& fn) {
  Observed o;
  try {
    o.result = fn();
  } catch (const ExecError& e) {
    o.threw = true;
    o.error = e.what();
  }
  return o;
}

/// The five-field bit-identity check, or error-text identity when the
/// tree-walker throws.
void expect_identical(const Program& program, const InputVector& input,
                      const ExecOptions& options = {},
                      const std::string& context = "") {
  const Linked linked = lower(program);
  const BytecodeProgram bytecode = compile(program, linked);
  const Observed tree =
      observe([&] { return execute_tree(program, linked, input, options); });
  const Observed vm =
      observe([&] { return vm::run(bytecode, input, options); });
  const std::string where =
      context.empty() ? program.name + " [" + input.label + "]" : context;
  ASSERT_EQ(tree.threw, vm.threw)
      << where << ": engines disagree on whether the run throws (tree \""
      << tree.error << "\", vm \"" << vm.error << "\")";
  if (tree.threw) {
    EXPECT_EQ(tree.error, vm.error) << where;
    return;
  }
  EXPECT_EQ(tree.result.trace.accesses, vm.result.trace.accesses) << where;
  EXPECT_EQ(tree.result.tokens, vm.result.tokens) << where;
  EXPECT_EQ(tree.result.path, vm.result.path) << where;
  EXPECT_EQ(tree.result.leaf_steps, vm.result.leaf_steps) << where;
  EXPECT_EQ(tree.result.env.scalars, vm.result.env.scalars) << where;
  EXPECT_EQ(tree.result.env.arrays, vm.result.env.arrays) << where;
}

// --- compilation ----------------------------------------------------------

TEST(BytecodeCompile, ResolvesNamesToDenseSlots) {
  const Program p = sum_program();
  const Linked linked = lower(p);
  const BytecodeProgram bc = compile(p, linked);

  // Scalars keep declaration order; the index maps agree with the tables.
  ASSERT_EQ(bc.scalar_names.size(), 2u);
  EXPECT_EQ(bc.scalar_names[0], "x");
  EXPECT_EQ(bc.scalar_names[1], "i");
  EXPECT_EQ(bc.scalar_index.at("x"), 0u);
  EXPECT_EQ(bc.scalar_index.at("i"), 1u);

  // Arrays carry the linked data address and a window of the flat heap
  // seeded from the declared init (zero-padded).
  ASSERT_EQ(bc.arrays.size(), 1u);
  EXPECT_EQ(bc.arrays[0].name, "a");
  EXPECT_EQ(bc.arrays[0].base, linked.array_base.at("a"));
  EXPECT_EQ(bc.arrays[0].size, 4u);
  EXPECT_EQ(bc.heap_init,
            (std::vector<Value>{10, 20, 30, 40}));

  // The constant loop bound is folded into a loop slot with its error
  // message precomposed.
  ASSERT_EQ(bc.loops.size(), 1u);
  EXPECT_EQ(bc.loops[0].max_trips, 4u);
  EXPECT_NE(bc.loops[0].bound_error.find("loop bound exceeded"),
            std::string::npos);
  EXPECT_GT(bc.max_stack, 0u);
  EXPECT_EQ(bc.ops.back().code, OpCode::kHalt);
}

TEST(BytecodeCompile, DedupesFetchSitesAndConstants) {
  Program p;
  p.name = "dedup";
  p.scalars = {"x", "i"};
  // The loop body re-executes the same statement: one fetch site, visited
  // four times. The constant 4 appears in two expressions: one const slot.
  p.body = for_loop("i", cst(0), var("i") < cst(4), 1,
                    assign("x", var("x") + cst(4)), 4);
  const BytecodeProgram bc = compile(p, lower(p));
  std::size_t fours = 0;
  for (const Value v : bc.consts) {
    if (v == 4) ++fours;
  }
  EXPECT_EQ(fours, 1u);
  // Sites: loop init, loop cond, loop step, body assign — each once.
  EXPECT_EQ(bc.sites.size(), 4u);
}

TEST(BytecodeCompile, LowersGhostToEnterExitOps) {
  Program p;
  p.name = "ghosted";
  p.scalars = {"x"};
  p.arrays.push_back({"a", 4, {}});
  p.body = seq({
      assign("x", cst(1)),
      ghost(store("a", cst(0), cst(9))),
  });
  const BytecodeProgram bc = compile(p, lower(p));
  EXPECT_EQ(bc.count_ops(OpCode::kGhostEnter), 1u);
  EXPECT_EQ(bc.count_ops(OpCode::kGhostExit), 1u);

  // No ghosts, no ghost ops.
  const Program sum = sum_program();
  const BytecodeProgram plain = compile(sum, lower(sum));
  EXPECT_EQ(plain.count_ops(OpCode::kGhostEnter), 0u);
  EXPECT_EQ(plain.count_ops(OpCode::kGhostExit), 0u);
  EXPECT_EQ(plain.count_ops(OpCode::kPadEnter), 0u);
}

TEST(BytecodeCompile, LowersPadToMaxToExplicitPadSection) {
  Program p = sum_program();
  // Mark the for-loop pad_to_max, as PUB does.
  p.body->children[1]->pad_to_max = true;
  const BytecodeProgram bc = compile(p, lower(p));
  EXPECT_EQ(bc.count_ops(OpCode::kPadEnter), 1u);
  EXPECT_EQ(bc.count_ops(OpCode::kPadNext), 1u);
  // The pad section closes the ghost frame kPadEnter opened.
  EXPECT_EQ(bc.count_ops(OpCode::kGhostExit), 1u);
  // The pad section re-emits the loop body: strictly more ops than the
  // unpadded compilation of the same program.
  const Program sum = sum_program();
  const BytecodeProgram plain = compile(sum, lower(sum));
  EXPECT_GT(bc.ops.size(), plain.ops.size());
}

TEST(BytecodeCompile, UnboundNamesAreCompileTimeExecErrors) {
  // lower() validates, so an unbound name can only reach compile() through
  // a program mutated after lowering — the compiler must still fail closed
  // rather than emit a slot for a name it cannot resolve.
  Program s;
  s.name = "bad-scalar";
  s.scalars = {"x"};
  s.body = assign("x", cst(1));
  const Linked s_linked = lower(s);
  s.scalars.clear();  // now "x" is unbound
  EXPECT_THROW(compile(s, s_linked), ExecError);

  Program a;
  a.name = "bad-array";
  a.scalars = {"x"};
  a.arrays.push_back({"a", 4, {}});
  a.body = assign("x", ld("a", cst(0)));
  const Linked a_linked = lower(a);
  a.arrays.clear();  // now "a" is unbound
  EXPECT_THROW(compile(a, a_linked), ExecError);
}

TEST(BytecodeCompile, DisassemblyListsEveryOp) {
  const Program sum = sum_program();
  const BytecodeProgram bc = compile(sum, lower(sum));
  const std::string listing = bc.disassemble();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(listing.begin(), listing.end(), '\n')),
            bc.ops.size());
  EXPECT_NE(listing.find("kHalt"), std::string::npos);
}

// --- differential battery -------------------------------------------------

TEST(VmEquivalence, AllSuiteKernelsAllInputsOriginalAndPubbed) {
  for (const suite::SuiteEntry& entry : suite::all()) {
    const suite::SuiteBenchmark bench = entry.make();
    const Program pubbed = pub::apply_pub(bench.program);
    std::vector<InputVector> inputs = bench.path_inputs;
    inputs.push_back(bench.default_input);
    for (const InputVector& in : inputs) {
      expect_identical(bench.program, in,
                       {}, bench.name + " [" + in.label + "] original");
      expect_identical(pubbed, in,
                       {}, bench.name + " [" + in.label + "] pubbed");
    }
  }
}

TEST(VmEquivalence, TwoHundredRandomProgramsOriginalAndPubbed) {
  RandProgConfig cfg;
  cfg.scalar_alias_prob = 0.25;  // counters double as data registers
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Xoshiro256 rng(mix64(0xbc0de, seed));
    const Program program = random_program(rng, cfg);
    const Program pubbed = pub::apply_pub(program);
    for (int k = 0; k < 2; ++k) {
      const InputVector in = random_input(program, rng, cfg);
      expect_identical(program, in, {},
                       "seed " + std::to_string(seed) + " input " +
                           std::to_string(k) + " original");
      expect_identical(pubbed, in, {},
                       "seed " + std::to_string(seed) + " input " +
                           std::to_string(k) + " pubbed");
    }
  }
}

TEST(VmEquivalence, TraceOffRunsAreIdenticalToo) {
  ExecOptions options;
  options.record_trace = false;
  const suite::SuiteBenchmark bs = suite::make_bs();
  expect_identical(bs.program, bs.default_input, options, "bs trace-off");
  // And trace-off really is off, but still counts leaf steps.
  const Program p = sum_program();
  const ExecResult r = vm::run(compile(p, lower(p)), {}, options);
  EXPECT_TRUE(r.trace.accesses.empty());
  EXPECT_TRUE(r.tokens.empty());
  EXPECT_GT(r.leaf_steps, 0u);
}

// --- error parity ---------------------------------------------------------

TEST(VmErrors, DivisionAndModuloByZeroTextsMatchTheTreeWalker) {
  for (const bool use_mod : {false, true}) {
    Program p;
    p.name = "div0";
    p.scalars = {"x", "y"};
    p.body = assign("x", use_mod ? var("x") % var("y")
                                 : var("x") / var("y"));
    expect_identical(p, {});  // y defaults to 0 -> both must throw alike
    const BytecodeProgram bc = compile(p, lower(p));
    try {
      vm::run(bc, {});
      FAIL() << "expected ExecError";
    } catch (const ExecError& e) {
      EXPECT_STREQ(e.what(), use_mod ? "div0: modulo by zero"
                                     : "div0: division by zero");
    }
  }
}

TEST(VmErrors, OutOfBoundsTextsMatchTheTreeWalker) {
  Program p;
  p.name = "oob";
  p.scalars = {"x", "k"};
  p.arrays.push_back({"a", 4, {}});
  p.body = assign("x", ld("a", var("k")));
  InputVector in;
  in.label = "far";
  in.scalars["k"] = 7;
  expect_identical(p, in);
  try {
    vm::run(compile(p, lower(p)), in);
    FAIL() << "expected ExecError";
  } catch (const ExecError& e) {
    EXPECT_STREQ(e.what(),
                 "oob: index 7 out of bounds for array 'a' (size 4)");
  }
  in.scalars["k"] = -1;  // negative indices are out of bounds, not wrapped
  expect_identical(p, in);
}

TEST(VmErrors, LoopBoundTextsMatchTheTreeWalker) {
  Program p;
  p.name = "runaway";
  p.scalars = {"x"};
  p.body = while_loop(cst(1), assign("x", var("x") + cst(1)), 3);
  expect_identical(p, {});
  try {
    vm::run(compile(p, lower(p)), {});
    FAIL() << "expected ExecError";
  } catch (const ExecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("runaway: loop bound exceeded (while, id "),
              std::string::npos);
  }
}

TEST(VmErrors, StepBudgetParityAtTheExactSameBudget) {
  // Both engines must throw the same text at the same max_leaf_steps, and
  // agree on the largest budget that still fails (i.e. they count steps
  // identically, not merely both overflow eventually).
  const Program p = sum_program();
  const Linked linked = lower(p);
  const BytecodeProgram bc = compile(p, linked);
  const std::uint64_t needed =
      execute_tree(p, linked, {}).leaf_steps;
  ASSERT_GT(needed, 1u);
  for (const std::uint64_t budget : {needed - 1, needed}) {
    ExecOptions options;
    options.max_leaf_steps = budget;
    expect_identical(p, {}, options,
                     "budget " + std::to_string(budget));
  }
  ExecOptions tight;
  tight.max_leaf_steps = needed - 1;
  try {
    vm::run(bc, {}, tight);
    FAIL() << "expected ExecError";
  } catch (const ExecError& e) {
    EXPECT_STREQ(e.what(), "sum: execution step budget exceeded");
  }
}

TEST(VmErrors, UndeclaredInputTextsMatchTheTreeWalker) {
  const Program p = sum_program();
  InputVector bad_scalar;
  bad_scalar.label = "bad";
  bad_scalar.scalars["nope"] = 1;
  expect_identical(p, bad_scalar);
  InputVector bad_array;
  bad_array.label = "bad";
  bad_array.arrays["nope"] = {1};
  expect_identical(p, bad_array);
  InputVector overflow;
  overflow.label = "bad";
  overflow.arrays["a"] = {1, 2, 3, 4, 5};
  expect_identical(p, overflow);
}

// --- executor surface -----------------------------------------------------

TEST(VmExecutor, DispatchKindNamesTheCompiledDispatcher) {
  const char* kind = vm::dispatch_kind();
  EXPECT_TRUE(std::strcmp(kind, "computed-goto") == 0 ||
              std::strcmp(kind, "switch") == 0)
      << kind;
#if defined(MBCR_VM_SWITCH_DISPATCH)
  EXPECT_STREQ(kind, "switch");
#endif
}

TEST(VmExecutor, ExecuteDispatchesOnTheExecutorOption) {
  const Program p = sum_program();
  const Linked linked = lower(p);
  ExecOptions options;
  options.executor = Executor::kVm;
  const ExecResult via_vm = execute(p, linked, {}, options);
  options.executor = Executor::kTree;
  const ExecResult via_tree = execute(p, linked, {}, options);
  EXPECT_EQ(via_vm.trace.accesses, via_tree.trace.accesses);
  EXPECT_EQ(via_vm.env.scalars.at("x"), 100);
  EXPECT_EQ(via_tree.env.scalars.at("x"), 100);
}

TEST(VmExecutor, ExecutorNamesParseAndPrint) {
  EXPECT_STREQ(to_string(Executor::kTree), "tree");
  EXPECT_STREQ(to_string(Executor::kVm), "vm");
  EXPECT_EQ(parse_executor("tree"), Executor::kTree);
  EXPECT_EQ(parse_executor("vm"), Executor::kVm);
  EXPECT_THROW(parse_executor("jit"), std::invalid_argument);
  EXPECT_EQ(ExecOptions{}.executor, Executor::kVm);  // the default engine
}

}  // namespace
}  // namespace mbcr::ir
