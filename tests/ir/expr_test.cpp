#include "ir/expr.hpp"

#include <gtest/gtest.h>

namespace mbcr::ir {
namespace {

TEST(Expr, ConstructorsSetKinds) {
  EXPECT_EQ(cst(5)->kind, Expr::Kind::kConst);
  EXPECT_EQ(var("x")->kind, Expr::Kind::kVar);
  EXPECT_EQ(ld("a", cst(0))->kind, Expr::Kind::kIndex);
  EXPECT_EQ((var("x") + cst(1))->kind, Expr::Kind::kBin);
  EXPECT_EQ(un(UnOp::kNeg, cst(1))->kind, Expr::Kind::kUn);
  EXPECT_EQ(select(cst(1), cst(2), cst(3))->kind, Expr::Kind::kSelect);
}

TEST(Expr, OperatorSugarBuildsExpectedOps) {
  const ExprPtr e = var("x") * cst(3) + ld("a", var("i"));
  ASSERT_EQ(e->kind, Expr::Kind::kBin);
  EXPECT_EQ(e->bin, BinOp::kAdd);
  EXPECT_EQ(e->a->bin, BinOp::kMul);
  EXPECT_EQ(e->b->name, "a");
}

TEST(Expr, OpCountCountsNodes) {
  EXPECT_EQ(cst(1)->op_count(), 1u);
  EXPECT_EQ((cst(1) + cst(2))->op_count(), 3u);
  EXPECT_EQ(select(var("c"), cst(1), cst(2))->op_count(), 4u);
  EXPECT_EQ(ld("a", var("i") + cst(1))->op_count(), 4u);
}

TEST(Expr, LoadCountCountsArrayReads) {
  EXPECT_EQ(var("x")->load_count(), 0u);
  EXPECT_EQ(ld("a", cst(0))->load_count(), 1u);
  EXPECT_EQ((ld("a", cst(0)) + ld("b", ld("a", cst(1))))->load_count(), 3u);
  EXPECT_EQ(select(cst(1), ld("a", cst(0)), ld("a", cst(1)))->load_count(),
            2u);
}

TEST(Expr, StructuralEquality) {
  EXPECT_TRUE(expr_equal(cst(4), cst(4)));
  EXPECT_FALSE(expr_equal(cst(4), cst(5)));
  EXPECT_TRUE(expr_equal(var("x") + cst(1), var("x") + cst(1)));
  EXPECT_FALSE(expr_equal(var("x") + cst(1), var("y") + cst(1)));
  EXPECT_FALSE(expr_equal(var("x") + cst(1), var("x") - cst(1)));
  EXPECT_TRUE(expr_equal(ld("a", var("i")), ld("a", var("i"))));
  EXPECT_FALSE(expr_equal(ld("a", var("i")), ld("b", var("i"))));
  EXPECT_TRUE(expr_equal(select(var("c"), cst(1), cst(2)),
                         select(var("c"), cst(1), cst(2))));
  EXPECT_FALSE(expr_equal(nullptr, cst(1)));
  EXPECT_TRUE(expr_equal(nullptr, nullptr));
}

TEST(Expr, ToStringReadable) {
  EXPECT_EQ(to_string(cst(7)), "7");
  EXPECT_EQ(to_string(var("x") + cst(1)), "(x + 1)");
  EXPECT_EQ(to_string(ld("a", var("i"))), "a[i]");
  EXPECT_EQ(to_string(select(var("c"), cst(1), cst(0))), "(c ? 1 : 0)");
}

}  // namespace
}  // namespace mbcr::ir
