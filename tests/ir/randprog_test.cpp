#include "ir/randprog.hpp"

#include <gtest/gtest.h>

#include "ir/interp.hpp"

namespace mbcr::ir {
namespace {

TEST(RandProg, GeneratesValidPrograms) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const Program p = random_program(rng);
    EXPECT_NO_THROW(validate(p));
  }
}

TEST(RandProg, ProgramsExecuteWithoutErrors) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 50; ++i) {
    const Program p = random_program(rng);
    const InputVector in = random_input(p, rng);
    EXPECT_NO_THROW(lower_and_execute(p, in)) << "iteration " << i;
  }
}

TEST(RandProg, DeterministicInRngState) {
  Xoshiro256 rng1(7);
  Xoshiro256 rng2(7);
  const Program p1 = random_program(rng1);
  const Program p2 = random_program(rng2);
  EXPECT_TRUE(stmt_equal(p1.body, p2.body));
}

TEST(RandProg, InputsInfluenceExecution) {
  // At least some generated programs must be genuinely multipath: find one
  // where two random inputs give different path signatures.
  Xoshiro256 rng(3);
  int multipath_found = 0;
  for (int i = 0; i < 60 && multipath_found == 0; ++i) {
    const Program p = random_program(rng);
    const InputVector in1 = random_input(p, rng);
    const InputVector in2 = random_input(p, rng);
    const ExecResult r1 = lower_and_execute(p, in1);
    const ExecResult r2 = lower_and_execute(p, in2);
    if (!(r1.path == r2.path)) ++multipath_found;
  }
  EXPECT_GT(multipath_found, 0);
}

TEST(RandProg, RespectsConfigKnobs) {
  Xoshiro256 rng(4);
  RandProgConfig cfg;
  cfg.n_arrays = 5;
  cfg.n_scalars = 7;
  const Program p = random_program(rng, cfg);
  EXPECT_EQ(p.arrays.size(), 5u);
  // n_scalars data scalars + loop counters.
  EXPECT_GE(p.scalars.size(), 7u);
}

}  // namespace
}  // namespace mbcr::ir
