#include "ir/randprog.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ir/interp.hpp"
#include "ir/printer.hpp"

namespace mbcr::ir {
namespace {

TEST(RandProg, GeneratesValidPrograms) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const Program p = random_program(rng);
    EXPECT_NO_THROW(validate(p));
  }
}

TEST(RandProg, ProgramsExecuteWithoutErrors) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 50; ++i) {
    const Program p = random_program(rng);
    const InputVector in = random_input(p, rng);
    EXPECT_NO_THROW(lower_and_execute(p, in)) << "iteration " << i;
  }
}

TEST(RandProg, DeterministicInRngState) {
  Xoshiro256 rng1(7);
  Xoshiro256 rng2(7);
  const Program p1 = random_program(rng1);
  const Program p2 = random_program(rng2);
  EXPECT_TRUE(stmt_equal(p1.body, p2.body));
}

TEST(RandProg, InputsInfluenceExecution) {
  // At least some generated programs must be genuinely multipath: find one
  // where two random inputs give different path signatures.
  Xoshiro256 rng(3);
  int multipath_found = 0;
  for (int i = 0; i < 60 && multipath_found == 0; ++i) {
    const Program p = random_program(rng);
    const InputVector in1 = random_input(p, rng);
    const InputVector in2 = random_input(p, rng);
    const ExecResult r1 = lower_and_execute(p, in1);
    const ExecResult r2 = lower_and_execute(p, in2);
    if (!(r1.path == r2.path)) ++multipath_found;
  }
  EXPECT_GT(multipath_found, 0);
}

TEST(RandProg, RespectsConfigKnobs) {
  Xoshiro256 rng(4);
  RandProgConfig cfg;
  cfg.n_arrays = 5;
  cfg.n_scalars = 7;
  const Program p = random_program(rng, cfg);
  EXPECT_EQ(p.arrays.size(), 5u);
  // n_scalars data scalars + loop counters.
  EXPECT_GE(p.scalars.size(), 7u);
}

TEST(RandProg, SameSeedPrintsByteIdenticalProgramAndInputs) {
  // The fuzzer's reproducibility contract: a fresh RNG from the same seed
  // always yields the byte-identical printed program and the identical
  // input vectors — statement ids differ between generations, but nothing
  // observable does.
  RandProgConfig cfg;
  cfg.max_depth = 4;
  cfg.scalar_alias_prob = 0.25;
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    Xoshiro256 rng1(seed);
    Xoshiro256 rng2(seed);
    const Program p1 = random_program(rng1, cfg);
    const Program p2 = random_program(rng2, cfg);
    EXPECT_EQ(to_string(p1), to_string(p2)) << "seed " << seed;
    const InputVector in1 = random_input(p1, rng1, cfg);
    const InputVector in2 = random_input(p2, rng2, cfg);
    EXPECT_EQ(in1.scalars, in2.scalars) << "seed " << seed;
    EXPECT_EQ(in1.arrays, in2.arrays) << "seed " << seed;
  }
}

TEST(RandProg, ScalarAliasingKnobHasAnEffect) {
  // With aliasing enabled, some generated assignment eventually targets a
  // loop counter ("iN = ..." in the printed form); with the default 0.0
  // none ever does.
  RandProgConfig cfg;
  cfg.scalar_alias_prob = 0.5;
  cfg.max_depth = 4;
  const auto has_counter_assignment = [&](const std::string& text) {
    // Assignment lines print as "<indent>iN = ...;" — loop headers start
    // with "for (" instead, so a trimmed line starting with a counter
    // name is a genuine aliasing assignment.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t start = line.find_first_not_of(' ');
      if (start == std::string::npos) continue;
      for (int v = 0; v < cfg.max_depth; ++v) {
        const std::string prefix = "i" + std::to_string(v) + " = ";
        if (line.compare(start, prefix.size(), prefix) == 0) return true;
      }
    }
    return false;
  };
  bool aliased = false;
  Xoshiro256 rng(13);
  for (int i = 0; i < 40 && !aliased; ++i) {
    aliased = has_counter_assignment(to_string(random_program(rng, cfg)));
  }
  EXPECT_TRUE(aliased);
}

TEST(RandProg, AliasedProgramsStillExecute) {
  Xoshiro256 rng(11);
  RandProgConfig cfg;
  cfg.scalar_alias_prob = 0.5;
  cfg.max_depth = 4;
  for (int i = 0; i < 30; ++i) {
    const Program p = random_program(rng, cfg);
    const InputVector in = random_input(p, rng, cfg);
    EXPECT_NO_THROW(lower_and_execute(p, in)) << "iteration " << i;
  }
}

TEST(RandProg, ConfigValidationRejectsBadSizes) {
  Xoshiro256 rng(5);
  RandProgConfig cfg;
  cfg.array_size = 0;
  EXPECT_THROW(random_program(rng, cfg), std::invalid_argument);
  cfg.array_size = 24;  // not a power of two
  EXPECT_THROW(random_program(rng, cfg), std::invalid_argument);
  cfg.array_size = 16;
  cfg.n_arrays = 0;
  EXPECT_THROW(random_program(rng, cfg), std::invalid_argument);
  cfg.n_arrays = 1;
  cfg.n_inputs = 99;  // more inputs than scalars
  EXPECT_THROW(random_program(rng, cfg), std::invalid_argument);
  cfg.n_inputs = 1;
  cfg.max_loop_trips = 1;
  EXPECT_THROW(random_program(rng, cfg), std::invalid_argument);
  cfg.max_loop_trips = 6;
  cfg.scalar_alias_prob = 1.5;
  EXPECT_THROW(random_program(rng, cfg), std::invalid_argument);
  cfg.scalar_alias_prob = 0.25;
  EXPECT_NO_THROW(random_program(rng, cfg));
  // random_input validates too (the config drives input generation).
  const Program p = random_program(rng, cfg);
  cfg.array_size = 7;
  EXPECT_THROW(random_input(p, rng, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mbcr::ir
