#include "ir/paths.hpp"

#include <gtest/gtest.h>

namespace mbcr::ir {
namespace {

TEST(PathSignature, EqualityAndHash) {
  PathSignature a;
  a.events = {{1, 1}, {2, 0}};
  PathSignature b = a;
  PathSignature c;
  c.events = {{1, 1}, {2, 1}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(PathSignature, HashIsOrderSensitive) {
  PathSignature a;
  a.events = {{1, 1}, {2, 0}};
  PathSignature b;
  b.events = {{2, 0}, {1, 1}};
  EXPECT_NE(a.hash(), b.hash());
}

TEST(PathSignature, Outcomes) {
  PathSignature a;
  a.events = {{10, 1}, {20, 4}, {30, 0}};
  EXPECT_EQ(a.outcomes(), (std::vector<std::uint64_t>{1, 4, 0}));
}

TEST(DistinctPaths, KeepsFirstOccurrences) {
  PathSignature a;
  a.events = {{1, 1}};
  PathSignature b;
  b.events = {{1, 0}};
  const std::vector<PathSignature> paths{a, b, a, b, a};
  EXPECT_EQ(distinct_paths(paths), (std::vector<std::size_t>{0, 1}));
}

TEST(DistinctPaths, EmptyAndAllSame) {
  EXPECT_TRUE(distinct_paths({}).empty());
  PathSignature a;
  a.events = {{3, 2}};
  EXPECT_EQ(distinct_paths({a, a, a}), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace mbcr::ir
