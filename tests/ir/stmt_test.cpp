#include "ir/stmt.hpp"

#include <gtest/gtest.h>

namespace mbcr::ir {
namespace {

TEST(Stmt, IdsAreUnique) {
  const StmtPtr a = assign("x", cst(1));
  const StmtPtr b = assign("x", cst(1));
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(a->origin, a->id);
}

TEST(Stmt, CloneGetsFreshIdsButKeepsOrigin) {
  const StmtPtr orig = seq({assign("x", cst(1)), store("a", cst(0), var("x"))});
  const StmtPtr copy = clone(orig);
  EXPECT_NE(copy->id, orig->id);
  EXPECT_EQ(copy->origin, orig->origin);
  ASSERT_EQ(copy->children.size(), 2u);
  EXPECT_NE(copy->children[0]->id, orig->children[0]->id);
  EXPECT_EQ(copy->children[0]->origin, orig->children[0]->origin);
  EXPECT_TRUE(stmt_equal(copy, orig));
}

TEST(Stmt, CloneOfCloneKeepsRootOrigin) {
  const StmtPtr orig = assign("x", cst(1));
  const StmtPtr c2 = clone(clone(orig));
  EXPECT_EQ(c2->origin, orig->id);
}

TEST(Stmt, GhostOfGhostCollapses) {
  const StmtPtr g = ghost(assign("x", cst(1)));
  const StmtPtr gg = ghost(g);
  EXPECT_EQ(gg, g);
}

TEST(Stmt, StructuralEquality) {
  EXPECT_TRUE(stmt_equal(assign("x", cst(1)), assign("x", cst(1))));
  EXPECT_FALSE(stmt_equal(assign("x", cst(1)), assign("y", cst(1))));
  EXPECT_FALSE(stmt_equal(assign("x", cst(1)), store("x", cst(0), cst(1))));
  EXPECT_TRUE(stmt_equal(
      if_else(var("c"), assign("x", cst(1)), assign("x", cst(2))),
      if_else(var("c"), assign("x", cst(1)), assign("x", cst(2)))));
  EXPECT_FALSE(stmt_equal(
      for_loop("i", cst(0), var("i") < cst(5), 1, nop(), 5),
      for_loop("i", cst(0), var("i") < cst(5), 1, nop(), 6)));
}

TEST(Stmt, IsStraightLine) {
  EXPECT_TRUE(is_straight_line(assign("x", cst(1))));
  EXPECT_TRUE(is_straight_line(seq({assign("x", cst(1)), nop()})));
  EXPECT_FALSE(is_straight_line(if_else(var("c"), nop())));
  EXPECT_FALSE(is_straight_line(
      seq({assign("x", cst(1)), while_loop(var("c"), nop(), 3)})));
}

TEST(Stmt, LeavesFlattensNestedSeqs) {
  const StmtPtr s = seq({
      assign("a", cst(1)),
      seq({assign("b", cst(2)), nop(), assign("c", cst(3))}),
  });
  const auto ls = leaves(s);
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[0]->name, "a");
  EXPECT_EQ(ls[1]->name, "b");
  EXPECT_EQ(ls[2]->name, "c");
}

TEST(Stmt, StmtCount) {
  EXPECT_EQ(stmt_count(nullptr), 0u);
  EXPECT_EQ(stmt_count(assign("x", cst(1))), 1u);
  const StmtPtr s =
      seq({assign("x", cst(1)), if_else(var("c"), nop(), nop())});
  EXPECT_EQ(stmt_count(s), 5u);
}

TEST(Stmt, ForLoopFields) {
  const StmtPtr f =
      for_loop("i", cst(0), var("i") < cst(8), 2, assign("x", var("i")), 4);
  EXPECT_EQ(f->kind, Stmt::Kind::kFor);
  EXPECT_EQ(f->name, "i");
  EXPECT_EQ(f->step, 2);
  EXPECT_EQ(f->max_trips, 4u);
  EXPECT_FALSE(f->pad_to_max);
}

}  // namespace
}  // namespace mbcr::ir
