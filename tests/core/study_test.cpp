#include "core/study.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/report.hpp"
#include "suite/malardalen.hpp"
#include "util/json.hpp"

namespace mbcr::core {
namespace {

/// Small campaigns so the whole suite stays test-sized.
StudySpec fast_spec(const std::string& suite, StudyMode mode) {
  StudySpec spec;
  spec.suite = suite;
  spec.mode = mode;
  spec.config.convergence.max_runs = 5000;
  spec.config.tac.max_runs_cap = 5000;
  spec.curve_max_exp = 12;
  return spec;
}

TEST(StudyMode, RoundTripsThroughStrings) {
  for (const StudyMode mode :
       {StudyMode::kOrig, StudyMode::kPub, StudyMode::kPubTac,
        StudyMode::kMultipath, StudyMode::kMeasure}) {
    EXPECT_EQ(parse_study_mode(to_string(mode)), mode);
  }
  EXPECT_THROW(parse_study_mode("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_study_mode(""), std::invalid_argument);
}

TEST(StudySpec, FlagDefaultsReproduceDefaultSpec) {
  const StudySpec spec = StudySpec::from_flags(StudySpec::flag_spec());
  const StudySpec dflt;
  EXPECT_EQ(spec.suite, "");
  EXPECT_FALSE(spec.randprog_seed.has_value());
  EXPECT_EQ(spec.mode, dflt.mode);
  EXPECT_EQ(spec.inputs, dflt.inputs);
  EXPECT_EQ(spec.config.campaign.master_seed,
            dflt.config.campaign.master_seed);
  EXPECT_EQ(spec.config.campaign.grain, dflt.config.campaign.grain);
  EXPECT_EQ(spec.config.campaign.batch, dflt.config.campaign.batch);
  EXPECT_EQ(spec.config.machine.il1.sets, dflt.config.machine.il1.sets);
  EXPECT_EQ(spec.config.machine.dl1.ways, dflt.config.machine.dl1.ways);
  EXPECT_EQ(spec.config.convergence.min_runs,
            dflt.config.convergence.min_runs);
  EXPECT_DOUBLE_EQ(spec.config.convergence.tolerance,
                   dflt.config.convergence.tolerance);
  EXPECT_EQ(spec.config.convergence.max_runs,
            dflt.config.convergence.max_runs);
  EXPECT_DOUBLE_EQ(spec.config.tac.target_miss_prob,
                   dflt.config.tac.target_miss_prob);
  EXPECT_EQ(spec.config.tac.max_runs_cap, dflt.config.tac.max_runs_cap);
  EXPECT_EQ(spec.config.baseline_probe_runs, dflt.config.baseline_probe_runs);
  EXPECT_DOUBLE_EQ(spec.config.pwcet_probability,
                   dflt.config.pwcet_probability);
  EXPECT_EQ(spec.measure_runs, dflt.measure_runs);
  EXPECT_EQ(spec.measure_pub, dflt.measure_pub);
  EXPECT_EQ(spec.curve_max_exp, dflt.curve_max_exp);
  EXPECT_EQ(spec.config.pub.merge, dflt.config.pub.merge);
  EXPECT_EQ(spec.config.pub.pad_loops, dflt.config.pub.pad_loops);
  EXPECT_EQ(spec.config.executor, ir::Executor::kVm);
  EXPECT_EQ(spec.config.executor, dflt.config.executor);
}

TEST(StudySpec, FromFlagsParsesOverrides) {
  auto flags = StudySpec::flag_spec();
  flags["suite"] = "crc";
  flags["mode"] = "multipath";
  flags["input"] = "all";
  flags["seed"] = "7";
  flags["threads"] = "3";
  flags["grain"] = "17";
  flags["batch"] = "5";
  flags["sets"] = "8";
  flags["ways"] = "4";
  flags["tolerance"] = "0.05";
  flags["max-runs"] = "1234";
  flags["pwcet-prob"] = "1e-9";
  flags["measure-pub"] = "true";
  flags["pub-merge"] = "append";
  flags["executor"] = "tree";
  const StudySpec spec = StudySpec::from_flags(flags);
  EXPECT_EQ(spec.suite, "crc");
  EXPECT_EQ(spec.mode, StudyMode::kMultipath);
  EXPECT_EQ(spec.inputs, InputSelection::kAllPaths);
  EXPECT_EQ(spec.config.campaign.master_seed, 7u);
  EXPECT_EQ(spec.config.campaign.threads, 3u);
  EXPECT_EQ(spec.config.campaign.grain, 17u);
  EXPECT_EQ(spec.config.campaign.batch, 5u);
  EXPECT_EQ(spec.config.machine.il1.sets, 8u);
  EXPECT_EQ(spec.config.machine.dl1.ways, 4u);
  EXPECT_DOUBLE_EQ(spec.config.convergence.tolerance, 0.05);
  EXPECT_EQ(spec.config.convergence.max_runs, 1234u);
  EXPECT_DOUBLE_EQ(spec.config.pwcet_probability, 1e-9);
  EXPECT_TRUE(spec.measure_pub);
  EXPECT_EQ(spec.config.pub.merge, pub::BranchMerge::kAppendGhost);
  EXPECT_EQ(spec.config.executor, ir::Executor::kTree);
}

TEST(StudySpec, FromFlagsRejectsBadValues) {
  auto flags = StudySpec::flag_spec();
  flags["seed"] = "not-a-number";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["tolerance"] = "0.03x";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["mode"] = "everything";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["pub-merge"] = "zip";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  // Non-finite numbers must not slip into a spec (NaN passes naive range
  // checks).
  flags = StudySpec::flag_spec();
  flags["pwcet-prob"] = "nan";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["tolerance"] = "inf";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  // Boolean-valued flags are strict too: garbage must not silently read
  // as false (the enum-flag audit, PR 5).
  flags = StudySpec::flag_spec();
  flags["measure-pub"] = "maybe";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["pad-loops"] = "2";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["executor"] = "jit";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
}

TEST(StudySpec, FromFlagsParsesHierarchyAndPlacement) {
  auto flags = StudySpec::flag_spec();
  flags["suite"] = "bs";
  flags["placement"] = "modulo";
  flags["l2-sets"] = "128";
  flags["l2-ways"] = "4";
  flags["l2-policy"] = "lru";
  flags["l2-latency"] = "7";
  const StudySpec spec = StudySpec::from_flags(flags);
  EXPECT_EQ(spec.config.machine.il1.placement, Placement::kModulo);
  EXPECT_EQ(spec.config.machine.dl1.placement, Placement::kModulo);
  ASSERT_TRUE(spec.config.machine.l2.enabled);
  EXPECT_EQ(spec.config.machine.l2.l2.sets, 128u);
  EXPECT_EQ(spec.config.machine.l2.l2.ways, 4u);
  EXPECT_EQ(spec.config.machine.l2.l2.line_bytes,
            spec.config.machine.il1.line_bytes);
  EXPECT_EQ(spec.config.machine.l2.policy, L2Policy::kLru);
  EXPECT_EQ(spec.config.machine.l2.latency, 7u);
  EXPECT_NO_THROW(spec.validate());

  // Default l2-sets 0 leaves the hierarchy disabled.
  const StudySpec dflt = StudySpec::from_flags(StudySpec::flag_spec());
  EXPECT_FALSE(dflt.config.machine.l2.enabled);
  EXPECT_EQ(dflt.config.machine.il1.placement, Placement::kHash);

  flags["l2-policy"] = "fifo";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags["l2-policy"] = "lru";
  flags["placement"] = "xor";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);

  // L2 flags without --l2-sets must fail loudly, not silently run a
  // single-level study; malformed values fail even with l2-sets 0.
  flags = StudySpec::flag_spec();
  flags["suite"] = "bs";
  flags["l2-policy"] = "lru";  // l2-sets left at 0
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["suite"] = "bs";
  flags["l2-latency"] = "99";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
  flags = StudySpec::flag_spec();
  flags["suite"] = "bs";
  flags["l2-policy"] = "fifo";
  EXPECT_THROW(StudySpec::from_flags(flags), std::invalid_argument);
}

TEST(StudySpec, ValidateRejectsBadHierarchy) {
  StudySpec spec;
  spec.suite = "bs";
  spec.config.machine.l2.enabled = true;
  spec.config.machine.l2.l2 = CacheConfig{0, 8, 32};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.config.machine.l2.l2 = CacheConfig{256, 8, 64};  // line mismatch
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.config.machine.l2.l2 = CacheConfig{256, 8, 32};
  EXPECT_NO_THROW(spec.validate());
}

TEST(StudySpec, JsonRoundTripsExactly) {
  auto flags = StudySpec::flag_spec();
  flags["suite"] = "crc";
  flags["mode"] = "multipath";
  flags["seed"] = "18446744073709551615";  // 64-bit seed, full precision
  flags["batch"] = "9";
  flags["placement"] = "modulo";
  flags["l2-sets"] = "512";
  flags["l2-policy"] = "random";
  flags["l2-placement"] = "modulo";
  flags["l2-latency"] = "12";
  flags["tolerance"] = "0.07";
  flags["pub-merge"] = "append";
  flags["executor"] = "tree";
  const StudySpec spec = StudySpec::from_flags(flags);

  const json::Value doc = spec.to_json();
  const StudySpec back = StudySpec::from_json(doc);
  EXPECT_EQ(back.to_json().dump(2), doc.dump(2));
  EXPECT_EQ(back.config.campaign.master_seed, 18446744073709551615ull);
  EXPECT_EQ(back.config.campaign.batch, 9u);
  EXPECT_EQ(back.config.machine.l2.l2.sets, 512u);
  EXPECT_EQ(back.config.machine.l2.l2.placement, Placement::kModulo);
  EXPECT_EQ(back.config.machine.il1.placement, Placement::kModulo);
  EXPECT_EQ(back.config.pub.merge, pub::BranchMerge::kAppendGhost);
  EXPECT_EQ(back.config.executor, ir::Executor::kTree);
}

TEST(StudySpec, FromJsonReadsV1DocumentsWithDefaults) {
  // A v1-era spec: no machine.l2, no placement members. It must load as
  // the single-level hash-placement platform it described.
  const json::Value doc = json::parse(R"({
    "suite": "bs", "mode": "pub", "input": "all",
    "machine": {"il1": {"sets": 8, "ways": 4, "line_bytes": 32},
                "dl1": {"sets": 64, "ways": 2, "line_bytes": 32},
                "timing": {"mem_latency": 50}},
    "campaign": {"master_seed": "7"}
  })");
  const StudySpec spec = StudySpec::from_json(doc);
  EXPECT_EQ(spec.suite, "bs");
  EXPECT_EQ(spec.mode, StudyMode::kPub);
  EXPECT_EQ(spec.inputs, InputSelection::kAllPaths);
  EXPECT_EQ(spec.config.machine.il1.sets, 8u);
  EXPECT_EQ(spec.config.machine.il1.placement, Placement::kHash);
  EXPECT_FALSE(spec.config.machine.l2.enabled);
  EXPECT_EQ(spec.config.machine.timing.mem_latency, 50u);
  EXPECT_EQ(spec.config.campaign.master_seed, 7u);
  // Unmentioned knobs keep their defaults.
  const StudySpec dflt;
  EXPECT_EQ(spec.config.convergence.max_runs,
            dflt.config.convergence.max_runs);
  // Pre-batching documents get the default batch width — samples are
  // batch-width invariant, so the replay stays exact.
  EXPECT_EQ(spec.config.campaign.batch, dflt.config.campaign.batch);
  // Pre-executor documents (v1-v3) run on the bytecode VM: bit-identical
  // to the tree-walker that produced them, so replays stay exact too.
  EXPECT_EQ(spec.config.executor, ir::Executor::kVm);
  EXPECT_NO_THROW(spec.validate());
}

TEST(StudySpec, TreeAndVmExecutorsProduceIdenticalStudies) {
  // The executor is a pure throughput knob: the whole study document —
  // traces, campaigns, convergence, TAC, pWCET curves — must be
  // byte-identical apart from the recorded executor name.
  StudySpec spec = fast_spec("bs", StudyMode::kPubTac);
  spec.config.convergence.max_runs = 2000;
  spec.config.tac.max_runs_cap = 2000;
  spec.config.executor = ir::Executor::kVm;
  const StudyResult vm = run_study(spec);
  spec.config.executor = ir::Executor::kTree;
  const StudyResult tree = run_study(spec);

  std::ostringstream vm_json, tree_json;
  vm.write_json(vm_json);
  tree.write_json(tree_json);
  std::string vm_text = vm_json.str();
  const std::string tree_text = tree_json.str();
  const auto at = vm_text.find("\"executor\": \"vm\"");
  ASSERT_NE(at, std::string::npos);
  vm_text.replace(at, std::string("\"executor\": \"vm\"").size(),
                  "\"executor\": \"tree\"");
  EXPECT_EQ(vm_text, tree_text);
}

TEST(StudySpec, FromJsonAcceptsWholeResultDocuments) {
  StudySpec spec = fast_spec("bs", StudyMode::kMeasure);
  spec.measure_runs = 5;
  const StudyResult result = run_study(spec);
  std::ostringstream ss;
  result.write_json(ss);
  const StudySpec back = StudySpec::from_json(json::parse(ss.str()));
  EXPECT_EQ(back.to_json().dump(2), result.spec.to_json().dump(2));
}

TEST(StudySpec, InputSelectorRoundTrips) {
  StudySpec spec;
  spec.set_input_selector("default");
  EXPECT_EQ(spec.inputs, InputSelection::kDefault);
  EXPECT_EQ(spec.input_selector(), "default");
  spec.set_input_selector("all");
  EXPECT_EQ(spec.inputs, InputSelection::kAllPaths);
  EXPECT_EQ(spec.input_selector(), "all");
  spec.set_input_selector("v9");
  EXPECT_EQ(spec.inputs, InputSelection::kLabel);
  EXPECT_EQ(spec.input_label, "v9");
  EXPECT_EQ(spec.input_selector(), "v9");
}

TEST(StudySpec, ValidateRejectsInconsistentSpecs) {
  StudySpec none;  // no program source
  EXPECT_THROW(none.validate(), std::invalid_argument);

  StudySpec both;
  both.suite = "bs";
  both.randprog_seed = 1;
  EXPECT_THROW(both.validate(), std::invalid_argument);

  StudySpec unknown;
  unknown.suite = "not-a-kernel";
  EXPECT_THROW(unknown.validate(), std::invalid_argument);

  StudySpec bad_prob;
  bad_prob.suite = "bs";
  bad_prob.config.pwcet_probability = 2.0;
  EXPECT_THROW(bad_prob.validate(), std::invalid_argument);

  StudySpec nan_prob;
  nan_prob.suite = "bs";
  nan_prob.config.pwcet_probability = std::nan("");
  EXPECT_THROW(nan_prob.validate(), std::invalid_argument);

  StudySpec nan_tol;
  nan_tol.suite = "bs";
  nan_tol.config.convergence.tolerance = std::nan("");
  EXPECT_THROW(nan_tol.validate(), std::invalid_argument);

  StudySpec zero_measure;
  zero_measure.suite = "bs";
  zero_measure.mode = StudyMode::kMeasure;
  zero_measure.measure_runs = 0;
  EXPECT_THROW(zero_measure.validate(), std::invalid_argument);

  StudySpec rand_label;
  rand_label.randprog_seed = 1;
  rand_label.inputs = InputSelection::kLabel;
  rand_label.input_label = "v1";
  EXPECT_THROW(rand_label.validate(), std::invalid_argument);

  StudySpec ok;
  ok.suite = "bs";
  EXPECT_NO_THROW(ok.validate());
}

// The acceptance pin: the declarative surface must produce exactly the
// numbers of the direct Analyzer call it wraps (`mbcr analyze --suite bs
// --mode pub_tac` == Analyzer::analyze_pubbed).
TEST(RunStudy, PubTacMatchesDirectAnalyzerCall) {
  StudySpec spec = fast_spec("bs", StudyMode::kPubTac);
  spec.config.convergence.max_runs = 20000;
  spec.config.tac.max_runs_cap = 50000;
  const StudyResult result = run_study(spec);

  const auto b = suite::make_bs();
  const Analyzer analyzer(spec.config);
  const PathAnalysis direct = analyzer.analyze_pubbed(b.program,
                                                      b.default_input);

  ASSERT_EQ(result.paths.size(), 1u);
  const PathAnalysis& via_study = result.paths.front();
  EXPECT_EQ(result.program_name, "bs.pub");
  EXPECT_EQ(via_study.input_label, direct.input_label);
  EXPECT_EQ(via_study.trace_accesses, direct.trace_accesses);
  EXPECT_DOUBLE_EQ(via_study.baseline_cycles, direct.baseline_cycles);
  EXPECT_EQ(via_study.r_mbpta, direct.r_mbpta);
  EXPECT_EQ(via_study.r_tac, direct.r_tac);
  EXPECT_EQ(via_study.r_total, direct.r_total);
  EXPECT_DOUBLE_EQ(via_study.pwcet.at(1e-12), direct.pwcet.at(1e-12));
  EXPECT_DOUBLE_EQ(via_study.pwcet.at(1e-6), direct.pwcet.at(1e-6));
  EXPECT_GE(result.runs_executed,
            direct.r_total + spec.config.baseline_probe_runs);
}

TEST(RunStudy, OrigModeSkipsTac) {
  const StudyResult result = run_study(fast_spec("bs", StudyMode::kOrig));
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.program_name, "bs");
  EXPECT_EQ(result.paths[0].r_tac, 0u);
}

TEST(RunStudy, MultipathCoversAllPathsAndNormalizesSelection) {
  // inputs left at kDefault: multipath normalizes to kAllPaths.
  const StudyResult result =
      run_study(fast_spec("bs", StudyMode::kMultipath));
  EXPECT_EQ(result.spec.inputs, InputSelection::kAllPaths);
  ASSERT_EQ(result.paths.size(), 8u);  // bs's eight max-iteration paths
  const double combined = result.pwcet_at(1e-12);
  for (const PathAnalysis& pa : result.paths) {
    EXPECT_LE(combined, pa.pwcet.at(1e-12));
  }
  EXPECT_LT(result.tightest_path(1e-12), result.paths.size());
}

TEST(RunStudy, LabelSelectionAnalyzesExactlyThatPath) {
  const auto b = suite::make_bs();
  StudySpec spec = fast_spec("bs", StudyMode::kMeasure);
  spec.measure_runs = 50;
  spec.inputs = InputSelection::kLabel;
  spec.input_label = b.path_inputs[2].label;
  const StudyResult result = run_study(spec);
  ASSERT_EQ(result.samples.size(), 1u);
  EXPECT_EQ(result.samples[0].input_label, b.path_inputs[2].label);
  EXPECT_EQ(result.samples[0].times.size(), 50u);
  EXPECT_EQ(result.runs_executed, 50u);

  spec.input_label = "no-such-path";
  EXPECT_THROW(run_study(spec), std::invalid_argument);
}

TEST(RunStudy, MeasureMatchesAnalyzerMeasure) {
  StudySpec spec = fast_spec("edn", StudyMode::kMeasure);
  spec.measure_runs = 64;
  const StudyResult result = run_study(spec);
  const auto b = suite::make_edn();
  const Analyzer analyzer(spec.config);
  ASSERT_EQ(result.samples.size(), 1u);
  EXPECT_EQ(result.samples[0].times,
            analyzer.measure(b.program, b.default_input, 64));
}

TEST(RunStudy, MeasurePubMeasuresThePubbedProgram) {
  StudySpec spec = fast_spec("bs", StudyMode::kMeasure);
  spec.measure_runs = 32;
  spec.measure_pub = true;
  const StudyResult result = run_study(spec);
  EXPECT_EQ(result.program_name, "bs.pub");
}

TEST(RunStudy, RandprogSeedIsAValidProgramSource) {
  StudySpec spec;
  spec.randprog_seed = 7;
  spec.mode = StudyMode::kMeasure;
  spec.measure_runs = 40;
  const StudyResult r1 = run_study(spec);
  ASSERT_EQ(r1.samples.size(), 1u);
  EXPECT_EQ(r1.samples[0].times.size(), 40u);
  // Same seed, same program, same sample.
  const StudyResult r2 = run_study(spec);
  EXPECT_EQ(r1.program_name, r2.program_name);
  EXPECT_EQ(r1.samples[0].times, r2.samples[0].times);
}

TEST(StudyResult, JsonRoundTrips) {
  StudySpec spec = fast_spec("bs", StudyMode::kPubTac);
  spec.config.convergence.max_runs = 2000;
  spec.config.tac.max_runs_cap = 2000;
  spec.curve_max_exp = 12;
  const StudyResult result = run_study(spec);

  std::ostringstream ss;
  result.write_json(ss);
  const json::Value doc = json::parse(ss.str());

  EXPECT_EQ(doc.at("schema").as_string(), "mbcr-study-v6");
  // Observability off: the optional accounting/metrics blocks must be
  // absent so default documents stay byte-identical across builds.
  EXPECT_EQ(doc.find("accounting"), nullptr);
  EXPECT_EQ(doc.find("metrics"), nullptr);
  EXPECT_EQ(doc.at("spec").at("executor").as_string(), "vm");
  EXPECT_EQ(doc.at("program").as_string(), "bs.pub");
  EXPECT_EQ(doc.at("spec").at("mode").as_string(), "pub_tac");
  EXPECT_EQ(doc.at("spec").at("suite").as_string(), "bs");
  EXPECT_DOUBLE_EQ(doc.at("spec").at("pwcet_probability").as_number(), 1e-12);
  // Seeds are 64-bit: serialized as decimal strings, not lossy doubles.
  EXPECT_EQ(doc.at("spec").at("campaign").at("master_seed").as_string(),
            "42");
  EXPECT_EQ(static_cast<std::size_t>(doc.at("runs_executed").as_number()),
            result.runs_executed);

  const json::Array& paths = doc.at("paths").as_array();
  ASSERT_EQ(paths.size(), 1u);
  const json::Value& p = paths[0];
  EXPECT_EQ(p.at("input").as_string(), result.paths[0].input_label);
  EXPECT_DOUBLE_EQ(p.at("r_mbpta").as_number(), result.paths[0].r_mbpta);
  EXPECT_DOUBLE_EQ(p.at("r_tac").as_number(), result.paths[0].r_tac);
  EXPECT_DOUBLE_EQ(p.at("pwcet").at("value").as_number(),
                   result.paths[0].pwcet.at(1e-12));
  // The emitted curve sits on the log grid: 3 mantissas per decade.
  EXPECT_EQ(p.at("pwcet").at("curve").as_array().size(),
            static_cast<std::size_t>(3 * spec.curve_max_exp));
  EXPECT_TRUE(p.at("tac").is_object());  // TAC ran

  // A saved document pretty-prints (`mbcr report`).
  std::ostringstream report;
  print_study_json(report, doc);
  EXPECT_NE(report.str().find("bs.pub"), std::string::npos);
  EXPECT_NE(report.str().find("R_total"), std::string::npos);

  // And serialization is a fixed point.
  EXPECT_EQ(json::parse(doc.dump(2)).dump(2), doc.dump(2));
}

TEST(StudyResult, MeasureJsonCarriesSamples) {
  StudySpec spec = fast_spec("bs", StudyMode::kMeasure);
  spec.measure_runs = 25;
  const StudyResult result = run_study(spec);
  std::ostringstream ss;
  result.write_json(ss);
  const json::Value doc = json::parse(ss.str());
  const json::Array& samples = doc.at("samples").as_array();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].at("runs").as_number(), 25.0);
  EXPECT_EQ(samples[0].at("times").as_array().size(), 25u);
  EXPECT_DOUBLE_EQ(samples[0].at("times").as_array()[0].as_number(),
                   result.samples[0].times[0]);
}

TEST(StudyResult, CsvEmitters) {
  StudySpec spec = fast_spec("bs", StudyMode::kPub);
  spec.config.convergence.max_runs = 1000;
  const StudyResult analysis = run_study(spec);
  std::ostringstream csv;
  analysis.write_csv(csv);
  EXPECT_NE(csv.str().find("program,input,trace_accesses"),
            std::string::npos);
  EXPECT_NE(csv.str().find("bs.pub,v1,"), std::string::npos);

  StudySpec mspec = fast_spec("bs", StudyMode::kMeasure);
  mspec.measure_runs = 3;
  std::ostringstream mcsv;
  run_study(mspec).write_csv(mcsv);
  EXPECT_NE(mcsv.str().find("program,input,run,cycles"), std::string::npos);
  EXPECT_NE(mcsv.str().find("bs,v1,2,"), std::string::npos);
}

TEST(StudyResult, PrintStudySummarizes) {
  StudySpec spec = fast_spec("bs", StudyMode::kPub);
  spec.config.convergence.max_runs = 1000;
  const StudyResult result = run_study(spec);
  std::ostringstream ss;
  print_study(ss, result);
  EXPECT_NE(ss.str().find("mode=pub"), std::string::npos);
  EXPECT_NE(ss.str().find("platform runs executed"), std::string::npos);
}

TEST(PrintStudyJson, RejectsForeignDocuments) {
  std::ostringstream ss;
  EXPECT_THROW(print_study_json(ss, json::parse("{\"schema\": \"other\"}")),
               std::runtime_error);
}

}  // namespace
}  // namespace mbcr::core
