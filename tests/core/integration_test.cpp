// End-to-end checks of the paper's central claims at test scale
// (scaled-down run counts; the bench harness reproduces them at full
// scale).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/analyzer.hpp"
#include "mbpta/eccdf.hpp"
#include "pub/pub_transform.hpp"
#include "pub/verify.hpp"
#include "suite/malardalen.hpp"

namespace mbcr::core {
namespace {

AnalysisConfig fast_config() {
  AnalysisConfig cfg;
  cfg.convergence.max_runs = 20000;
  cfg.tac.max_runs_cap = 50000;
  return cfg;
}

// Paper Observation 1 / Fig. 2 at reduced scale: every pubbed path's
// empirical distribution upper-bounds every original path's.
TEST(Integration, Fig2PubbedPathsDominateOriginalPaths) {
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const ir::Program pubbed = pub::apply_pub(b.program);

  constexpr std::size_t kRuns = 4000;
  std::vector<std::vector<double>> orig_samples;
  std::vector<std::vector<double>> pub_samples;
  for (const auto& in : b.path_inputs) {
    orig_samples.push_back(analyzer.measure(b.program, in, kRuns));
    pub_samples.push_back(analyzer.measure(pubbed, in, kRuns));
  }
  for (std::size_t j = 0; j < pub_samples.size(); ++j) {
    for (std::size_t i = 0; i < orig_samples.size(); ++i) {
      // 2% relative slack absorbs sampling noise on the quantile grid.
      EXPECT_LT(pub::dominance_violation(orig_samples[i], pub_samples[j],
                                         0.02),
                0.01)
          << "pubbed path " << j << " fails to dominate original path " << i;
    }
  }
}

// Paper Sec. 4.1: TAC generally requires at least as many runs as plain
// MBPTA convergence on the pubbed program.
TEST(Integration, TacRunsAtLeastConvergenceRunsOnBs) {
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const PathAnalysis res = analyzer.analyze_pubbed(b.program,
                                                   b.default_input);
  EXPECT_EQ(res.r_total, std::max(res.r_mbpta, res.r_tac));
  EXPECT_GE(res.r_total, res.r_mbpta);
}

// Single-path programs: PUB is innocuous (paper Fig. 5, rightmost six
// benchmarks) — identical trace, identical campaign, identical pWCET.
TEST(Integration, PubInnocuousOnSinglePathBenchmarks) {
  const Analyzer analyzer(fast_config());
  for (const std::string name : {"matmult", "fdct"}) {
    const auto b = suite::make_benchmark(name);
    const auto orig =
        ir::lower_and_execute(b.program, b.default_input);
    const auto pubbed = ir::lower_and_execute(
        pub::apply_pub(b.program), b.default_input);
    // No conditionals and loops already at their bounds: the pubbed trace
    // adds nothing.
    EXPECT_EQ(orig.trace.size(), pubbed.trace.size()) << name;
  }
}

// crc: the default input does NOT reach the worst path, and PUB covers
// the gap with a visible pWCET increase (paper: 4.4x; shape check only).
TEST(Integration, PubCoversUnobservedCrcPaths) {
  const auto b = suite::make_crc();
  const Analyzer analyzer(fast_config());
  const double orig_mean =
      [&] {
        const auto t = analyzer.measure(b.program, b.default_input, 500);
        return std::accumulate(t.begin(), t.end(), 0.0) / t.size();
      }();
  const ir::Program pubbed = pub::apply_pub(b.program);
  const double pub_mean =
      [&] {
        const auto t = analyzer.measure(pubbed, b.default_input, 500);
        return std::accumulate(t.begin(), t.end(), 0.0) / t.size();
      }();
  EXPECT_GT(pub_mean, orig_mean * 1.05);
}

// The knee mechanism behind Fig. 4: a program whose trace has a rare
// high-impact layout shows a higher observed max with TAC-sized campaigns
// than with small ones.
TEST(Integration, LargerCampaignsSeeDeeperTail) {
  // Synthetic 5-hot-lines program on the S=8/W=4 cache: knee probability
  // (1/8)^4 ~ 2.4e-4, invisible in 1000 runs w.h.p., visible in 50k.
  ir::Program p;
  p.name = "knee";
  p.arrays.push_back({"a", 40, {}});
  p.scalars = {"i", "r"};
  p.body = ir::for_loop(
      "r", ir::cst(0), ir::var("r") < ir::cst(200), 1,
      ir::for_loop("i", ir::cst(0), ir::var("i") < ir::cst(5), 1,
                   ir::store("a", ir::var("i") * ir::cst(8), ir::cst(1)), 5),
      200);

  AnalysisConfig cfg = fast_config();
  cfg.machine.dl1 = CacheConfig::example_s8w4();
  cfg.machine.il1 = CacheConfig{256, 4, 32};  // keep icache quiet
  const Analyzer analyzer(cfg);
  const auto small_sample = analyzer.measure(p, {}, 1000);
  const auto big_sample = analyzer.measure(p, {}, 60000);
  const double small_max =
      *std::max_element(small_sample.begin(), small_sample.end());
  const double big_max =
      *std::max_element(big_sample.begin(), big_sample.end());
  // The rare co-mapped layout costs ~1000 extra misses: unmistakable.
  EXPECT_GT(big_max, small_max * 1.5);
}

// And TAC predicts a campaign size that actually captures that knee.
TEST(Integration, TacSizedCampaignCapturesKnee) {
  ir::Program p;
  p.name = "knee2";
  p.arrays.push_back({"a", 40, {}});
  p.scalars = {"i", "r"};
  p.body = ir::for_loop(
      "r", ir::cst(0), ir::var("r") < ir::cst(200), 1,
      ir::for_loop("i", ir::cst(0), ir::var("i") < ir::cst(5), 1,
                   ir::store("a", ir::var("i") * ir::cst(8), ir::cst(1)), 5),
      200);
  AnalysisConfig cfg = fast_config();
  cfg.machine.dl1 = CacheConfig::example_s8w4();
  cfg.machine.il1 = CacheConfig{256, 4, 32};
  cfg.tac.max_runs_cap = 200000;
  const Analyzer analyzer(cfg);

  const auto exec = ir::lower_and_execute(p, {});
  const auto tac_res = tac::analyze_trace(
      exec.trace, cfg.machine.il1, cfg.machine.dl1,
      /*baseline_cycles=*/50000.0,
      static_cast<double>(cfg.machine.timing.mem_latency), cfg.tac);
  // One 5-line class on the DL1: ~85k runs, the paper's Sec. 3.1.1 figure.
  EXPECT_GE(tac_res.dl1.required_runs, 60000u);
  EXPECT_LE(tac_res.dl1.required_runs, 120000u);

  // A TAC-sized campaign observes the abrupt event.
  const auto sample = analyzer.measure(p, {}, tac_res.dl1.required_runs);
  const mbpta::Eccdf ecc(sample);
  EXPECT_GT(ecc.max(), 1.5 * ecc.value_at_exceedance(0.5));
}

}  // namespace
}  // namespace mbcr::core
