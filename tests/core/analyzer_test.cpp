#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "suite/malardalen.hpp"

namespace mbcr::core {
namespace {

AnalysisConfig fast_config() {
  AnalysisConfig cfg;
  cfg.convergence.max_runs = 20000;
  cfg.tac.max_runs_cap = 50000;
  return cfg;
}

TEST(Analyzer, OriginalAnalysisProducesSanePwcet) {
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const PathAnalysis res = analyzer.analyze_original(b.program,
                                                     b.default_input);
  EXPECT_EQ(res.program_name, "bs");
  EXPECT_EQ(res.r_tac, 0u);
  EXPECT_GE(res.r_mbpta, analyzer.config().convergence.min_runs);
  EXPECT_EQ(res.r_total, res.r_mbpta);
  EXPECT_GT(res.baseline_cycles, 0.0);
  // pWCET at deep probability dominates the observed body.
  EXPECT_GT(res.pwcet.at(1e-12), res.baseline_cycles);
}

TEST(Analyzer, PubbedAnalysisRunsTacAndExtendsCampaign) {
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const PathAnalysis res =
      analyzer.analyze_pubbed(b.program, b.path_inputs[4]);  // v9
  EXPECT_EQ(res.program_name, "bs.pub");
  EXPECT_GE(res.r_tac, 1u);
  EXPECT_EQ(res.r_total, std::max(res.r_mbpta, res.r_tac));
  EXPECT_GE(res.pwcet.sample_size(), res.r_total);
}

TEST(Analyzer, PubbedWithoutTacSkipsIt) {
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const PathAnalysis res =
      analyzer.analyze_pubbed(b.program, b.default_input, /*with_tac=*/false);
  EXPECT_EQ(res.r_tac, 0u);
}

TEST(Analyzer, PubbedPwcetUpperBoundsAllOriginalPathMaxima) {
  // Corollary 1 at test scale: pWCET of one pubbed path >= observed max of
  // every original path.
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const PathAnalysis pubbed =
      analyzer.analyze_pubbed(b.program, b.path_inputs[0]);
  const double pwcet = pubbed.pwcet.at(1e-6);
  for (const auto& in : b.path_inputs) {
    const auto times = analyzer.measure(b.program, in, 3000);
    const double observed_max =
        *std::max_element(times.begin(), times.end());
    EXPECT_GE(pwcet, observed_max) << in.label;
  }
}

TEST(Analyzer, MeasureIsDeterministic) {
  const auto b = suite::make_edn();
  const Analyzer analyzer(fast_config());
  EXPECT_EQ(analyzer.measure(b.program, b.default_input, 50),
            analyzer.measure(b.program, b.default_input, 50));
}

TEST(Analyzer, AnalysisIsReproducible) {
  const auto b = suite::make_fir();
  const Analyzer analyzer(fast_config());
  const PathAnalysis r1 = analyzer.analyze_original(b.program,
                                                    b.default_input);
  const PathAnalysis r2 = analyzer.analyze_original(b.program,
                                                    b.default_input);
  EXPECT_EQ(r1.r_mbpta, r2.r_mbpta);
  EXPECT_DOUBLE_EQ(r1.pwcet.at(1e-12), r2.pwcet.at(1e-12));
}

TEST(Analyzer, BatchedMultiPathMatchesSerialAnalysis) {
  // analyze_pubbed_paths schedules every per-path campaign onto the shared
  // pool concurrently; results must equal the serial per-path analyses, in
  // input order (the campaign determinism contract end-to-end).
  const auto b = suite::make_bs();
  AnalysisConfig cfg = fast_config();
  cfg.convergence.max_runs = 5000;
  cfg.tac.max_runs_cap = 5000;
  const Analyzer analyzer(cfg);
  const std::vector<ir::InputVector> inputs(b.path_inputs.begin(),
                                            b.path_inputs.begin() + 3);
  const auto batched = analyzer.analyze_pubbed_paths(b.program, inputs);
  ASSERT_EQ(batched.per_path.size(), inputs.size());
  const ir::Program pubbed = pub::apply_pub(b.program, cfg.pub);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const PathAnalysis serial =
        analyzer.analyze_program(pubbed, inputs[i], /*with_tac=*/true);
    EXPECT_EQ(batched.per_path[i].input_label, inputs[i].label);
    EXPECT_EQ(batched.per_path[i].r_mbpta, serial.r_mbpta);
    EXPECT_EQ(batched.per_path[i].r_tac, serial.r_tac);
    EXPECT_EQ(batched.per_path[i].r_total, serial.r_total);
    EXPECT_DOUBLE_EQ(batched.per_path[i].pwcet.at(1e-12),
                     serial.pwcet.at(1e-12));
  }
  // Corollary 2 combinators operate over the batch.
  EXPECT_GT(batched.pwcet_at(1e-12), 0.0);
  EXPECT_LT(batched.tightest_path(1e-12), inputs.size());
}

TEST(Report, PrintsAnalysisSummary) {
  const auto b = suite::make_bs();
  const Analyzer analyzer(fast_config());
  const PathAnalysis res = analyzer.analyze_pubbed(b.program,
                                                   b.default_input);
  std::ostringstream ss;
  print_path_analysis(ss, res);
  EXPECT_NE(ss.str().find("bs.pub"), std::string::npos);
  EXPECT_NE(ss.str().find("R_tac"), std::string::npos);
  std::ostringstream curve;
  print_pwcet_curve(curve, res.pwcet, 12);
  EXPECT_NE(curve.str().find("exceedance_prob"), std::string::npos);
}

}  // namespace
}  // namespace mbcr::core
