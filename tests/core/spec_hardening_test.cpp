// Fail-closed loading of persisted documents: every byte-prefix of a
// valid StudySpec document (the "torn file" corpus — what a crashed
// non-atomic writer leaves behind) must raise std::invalid_argument with
// a byte offset, never a half-default spec, a bare runtime_error (exit 1
// instead of 2) or a crash. Same contract for type-mangled specs and for
// the fuzz repro loader over its committed corpus.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/study.hpp"
#include "fuzz/repro.hpp"
#include "util/json.hpp"

namespace mbcr::core {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Parse + from_json, the way `mbcr analyze --spec` consumes a file.
StudySpec load_spec_text(const std::string& text) {
  return StudySpec::from_json(json::parse(text));
}

TEST(SpecHardening, EveryTornPrefixFailsClosedWithAnOffset) {
  StudySpec spec;
  spec.suite = "bs";
  spec.mode = StudyMode::kMeasure;
  spec.measure_runs = 123;
  const std::string full = spec.to_json().dump(2);
  ASSERT_GT(full.size(), 50u);

  // The full document round-trips...
  EXPECT_EQ(load_spec_text(full).measure_runs, 123u);

  // ...and every proper prefix is refused as malformed input. A prefix
  // of a JSON object is never a complete document, so json::parse must
  // throw — and throw the *usage-error* type, with the offset attached.
  for (std::size_t len = 0; len < full.size(); ++len) {
    try {
      load_spec_text(full.substr(0, len));
      FAIL() << "prefix of length " << len << " was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << "prefix length " << len << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << "prefix length " << len
             << " threw a non-usage error: " << e.what();
    }
  }
}

TEST(SpecHardening, TypeMangledSpecsAreUsageErrorsNotRuntimeErrors) {
  // Accessor type mismatches inside from_json must be normalized to
  // invalid_argument so the CLI exits 2.
  for (const char* doc : {
           R"({"suite": 7})",
           R"({"suite": "bs", "mode": 3})",
           R"({"suite": "bs", "measure_runs": "many"})",
           R"({"suite": "bs", "machine": []})",
           R"({"suite": "bs", "campaign": {"master_seed": []}})",
           R"([1, 2, 3])",
       }) {
    EXPECT_THROW(load_spec_text(doc), std::invalid_argument) << doc;
  }
}

TEST(SpecHardening, ReproLoaderFailsClosedOnTornAndMissingFiles) {
  const std::string path = std::string(MBCR_SOURCE_DIR) +
                           "/tests/fuzz_corpus/corpus/seed-all-nested.json";
  const std::string full = read_all(path);
  ASSERT_GT(full.size(), 100u);

  // Missing file: usage error with the path in the message.
  EXPECT_THROW(fuzz::load_repro(path + ".no-such"), std::invalid_argument);

  // Torn prefixes at a byte granularity coarse enough to stay fast but
  // covering the whole document, including cut-offs inside numbers,
  // strings and nested arrays.
  const char* tmp = std::getenv("TMPDIR");
  const std::string torn_path = std::string(tmp != nullptr ? tmp : "/tmp") +
                                "/mbcr_torn_repro.json";
  // Stop before the root object's closing brace (the file may end in a
  // newline, and "everything but the trailing newline" IS complete).
  const std::size_t last = full.find_last_not_of(" \t\r\n");
  ASSERT_NE(last, std::string::npos);
  for (std::size_t len = 0; len <= last; len += 7) {
    {
      std::ofstream torn(torn_path, std::ios::trunc);
      torn << full.substr(0, len);
    }
    try {
      fuzz::load_repro(torn_path);
      FAIL() << "torn repro of length " << len << " was accepted";
    } catch (const std::invalid_argument&) {
      // expected: fail closed as a usage error
    } catch (const std::exception& e) {
      FAIL() << "torn length " << len << ": non-usage error " << e.what();
    }
  }
}

}  // namespace
}  // namespace mbcr::core
