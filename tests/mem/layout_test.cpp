#include "mem/layout.hpp"

#include <gtest/gtest.h>

namespace mbcr {
namespace {

TEST(MemoryLayout, AllocatesSequentially) {
  MemoryLayout layout(0x1000, 0x8000);
  const Addr a = layout.alloc_data("a", 64);
  const Addr b = layout.alloc_data("b", 32);
  EXPECT_EQ(a, 0x8000u);
  EXPECT_EQ(b, 0x8040u);
}

TEST(MemoryLayout, CodeAndDataSegmentsAreSeparate) {
  MemoryLayout layout(0x1000, 0x8000);
  const Addr text = layout.alloc_code("text", 256);
  const Addr data = layout.alloc_data("data", 256);
  EXPECT_EQ(text, 0x1000u);
  EXPECT_EQ(data, 0x8000u);
}

TEST(MemoryLayout, RespectsAlignment) {
  MemoryLayout layout;
  layout.alloc_data("pad", 3);
  const Addr aligned = layout.alloc_data("v", 8, 32);
  EXPECT_EQ(aligned % 32, 0u);
}

TEST(MemoryLayout, RegionsDoNotOverlap) {
  MemoryLayout layout;
  layout.alloc_data("x", 100, 4);
  layout.alloc_data("y", 100, 4);
  const auto& rx = layout.region("x");
  const auto& ry = layout.region("y");
  EXPECT_GE(ry.base, rx.base + rx.size);
}

TEST(MemoryLayout, LookupByName) {
  MemoryLayout layout;
  layout.alloc_data("arr", 40);
  EXPECT_TRUE(layout.has_region("arr"));
  EXPECT_FALSE(layout.has_region("nope"));
  EXPECT_EQ(layout.region("arr").size, 40u);
  EXPECT_THROW(layout.region("nope"), std::out_of_range);
}

TEST(MemoryLayout, RejectsDuplicatesAndBadArgs) {
  MemoryLayout layout;
  layout.alloc_data("a", 8);
  EXPECT_THROW(layout.alloc_data("a", 8), std::invalid_argument);
  EXPECT_THROW(layout.alloc_data("z", 0), std::invalid_argument);
  EXPECT_THROW(layout.alloc_data("w", 8, 3), std::invalid_argument);
}

TEST(AddressHelpers, LineOf) {
  EXPECT_EQ(line_of(0, 32), 0u);
  EXPECT_EQ(line_of(31, 32), 0u);
  EXPECT_EQ(line_of(32, 32), 1u);
  EXPECT_EQ(line_of(0x1000, 32), 0x1000u / 32);
}

}  // namespace
}  // namespace mbcr
