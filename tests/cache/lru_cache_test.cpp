#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

namespace mbcr {
namespace {

// Single-set 2-way LRU reproduces the paper's Sec. 2 counterexample.
CacheConfig one_set_two_way() { return CacheConfig{1, 2, 32}; }

std::uint64_t misses_of(std::initializer_list<Addr> lines,
                        const CacheConfig& cfg) {
  LruCache cache(cfg);
  for (Addr l : lines) cache.access_line(l);
  return cache.misses();
}

TEST(LruCache, PaperSec2CounterexampleABCA) {
  // {A B C A}: A miss, B miss, C miss (evicts A: LRU), A miss => 4 misses.
  constexpr Addr A = 1, B = 2, C = 3;
  EXPECT_EQ(misses_of({A, B, C, A}, one_set_two_way()), 4u);
}

TEST(LruCache, PaperSec2CounterexampleABACA) {
  // {A B A C A}: A miss, B miss, A hit, C miss (evicts B), A hit => 3
  // misses. Inserting an access REDUCED misses: PUB's monotonicity breaks
  // under LRU, which is why PUB requires time-randomized caches.
  constexpr Addr A = 1, B = 2, C = 3;
  EXPECT_EQ(misses_of({A, B, A, C, A}, one_set_two_way()), 3u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(one_set_two_way());
  cache.access_line(1);
  cache.access_line(2);
  cache.access_line(1);     // order now: 1 MRU, 2 LRU
  cache.access_line(3);     // evicts 2
  EXPECT_TRUE(cache.access_line(1));
  EXPECT_FALSE(cache.access_line(2));
}

TEST(LruCache, ModuloPlacementIsDeterministic) {
  LruCache cache(CacheConfig{8, 2, 32});
  EXPECT_EQ(cache.set_of_line(0), 0u);
  EXPECT_EQ(cache.set_of_line(9), 1u);
  EXPECT_EQ(cache.set_of_line(16), 0u);
}

TEST(LruCache, DistinctSetsDoNotConflict) {
  LruCache cache(CacheConfig{8, 1, 32});
  for (Addr l = 0; l < 8; ++l) cache.access_line(l);
  for (Addr l = 0; l < 8; ++l) EXPECT_TRUE(cache.access_line(l));
}

TEST(LruCache, FlushResets) {
  LruCache cache(one_set_two_way());
  cache.access_line(1);
  cache.flush();
  EXPECT_FALSE(cache.access_line(1));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(LruCache, ByteAddressesShareLines) {
  LruCache cache(CacheConfig{8, 2, 32});
  EXPECT_FALSE(cache.access(64));
  EXPECT_TRUE(cache.access(95));
  EXPECT_FALSE(cache.access(96));
}

}  // namespace
}  // namespace mbcr
