// Unit tests for the two-level memory hierarchy: config parsing and
// validation, unified-L2 sharing between the instruction and data sides,
// and the inclusion/latency edge cases (L2 smaller than L1, single-set
// L2, zero probe latency, capacity eviction).
#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

#include "platform/machine.hpp"

namespace mbcr {
namespace {

using platform::Machine;
using platform::MachineConfig;

TEST(Placement, RoundTripsThroughStrings) {
  for (const Placement p : {Placement::kHash, Placement::kModulo}) {
    EXPECT_EQ(parse_placement(to_string(p)), p);
  }
  EXPECT_THROW(parse_placement("xor"), std::invalid_argument);
  EXPECT_THROW(parse_placement(""), std::invalid_argument);
}

TEST(L2Policy, RoundTripsThroughStrings) {
  for (const L2Policy p : {L2Policy::kRandom, L2Policy::kLru}) {
    EXPECT_EQ(parse_l2_policy(to_string(p)), p);
  }
  EXPECT_THROW(parse_l2_policy("fifo"), std::invalid_argument);
}

TEST(HierarchyConfig, ValidateChecksGeometryAndLineSize) {
  HierarchyConfig cfg;
  EXPECT_NO_THROW(cfg.validate(32));  // disabled: anything goes
  cfg.l2.sets = 0;
  EXPECT_NO_THROW(cfg.validate(32));

  cfg = HierarchyConfig::shared_l2_random();
  EXPECT_NO_THROW(cfg.validate(32));
  EXPECT_THROW(cfg.validate(64), std::invalid_argument);  // line mismatch
  cfg.l2.sets = 0;
  EXPECT_THROW(cfg.validate(32), std::invalid_argument);
}

TEST(HierarchyConfig, MachineRejectsMismatchedLineSizes) {
  MachineConfig cfg;
  cfg.l2 = HierarchyConfig::shared_l2_random();
  cfg.l2.l2.line_bytes = 64;
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
  cfg.l2.l2.line_bytes = 32;
  cfg.dl1.line_bytes = 64;  // split line sizes can't share a unified L2
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
}

/// A machine whose L1s are large and fully associative: every L1 miss is
/// a cold miss, so the L2 sees exactly one probe per unique line per side.
MachineConfig cold_l1_machine(L2Policy policy) {
  MachineConfig cfg;
  cfg.il1 = CacheConfig{1, 64, 32};
  cfg.dl1 = CacheConfig{1, 64, 32};
  cfg.l2.enabled = true;
  cfg.l2.policy = policy;
  return cfg;
}

TEST(Hierarchy, UnifiedL2IsSharedBetweenSides) {
  // The same line fetched as an instruction and then loaded as data: the
  // second side's cold L1 miss must HIT the unified L2 (one line, one L2
  // entry — exactly what a unified cache does).
  MemTrace mem;
  mem.emit(0x1000, AccessKind::kIFetch);
  mem.emit(0x1000, AccessKind::kLoad);
  const CompactTrace trace = CompactTrace::from(mem);
  ASSERT_EQ(trace.ulines.size(), 1u);  // one unified line
  ASSERT_EQ(trace.iline_uid[0], trace.dline_uid[0]);

  for (const L2Policy policy : {L2Policy::kRandom, L2Policy::kLru}) {
    const Machine machine(cold_l1_machine(policy));
    const TimingParams& t = machine.config().timing;
    const std::uint64_t lat = machine.config().l2.latency;
    // IFetch: issue + L2 probe + memory. Load: dl1-hit base + L2 probe.
    const std::uint64_t want = (t.issue_cycles + lat + t.mem_latency) +
                               (t.dl1_hit_cycles + lat);
    for (std::uint64_t seed : {1ull, 99ull}) {
      EXPECT_EQ(machine.run_once(trace, seed), want)
          << to_string(policy) << " seed " << seed;
      EXPECT_EQ(machine.run_once_reference(mem, seed), want);
    }
  }
}

TEST(Hierarchy, LruL2CapacityEvictionIsExact) {
  // Two lines ping-ponging through 1-set L1s. A 1-way L2 thrashes (every
  // probe misses); a 2-way L2 holds both lines (only cold probes miss).
  MemTrace mem;
  for (int i = 0; i < 2; ++i) {
    mem.emit(0x0, AccessKind::kIFetch);
    mem.emit(0x20, AccessKind::kIFetch);
  }
  const CompactTrace trace = CompactTrace::from(mem);

  MachineConfig cfg;
  cfg.il1 = CacheConfig{1, 1, 32};  // A and B evict each other: 4 misses
  cfg.l2.enabled = true;
  cfg.l2.policy = L2Policy::kLru;
  cfg.l2.l2 = CacheConfig{1, 1, 32};
  const TimingParams t;
  const std::uint64_t lat = cfg.l2.latency;
  {
    const Machine thrash(cfg);
    const std::uint64_t want = 4 * (t.issue_cycles + lat + t.mem_latency);
    EXPECT_EQ(thrash.run_once(trace, 3), want);
    EXPECT_EQ(thrash.run_once_reference(mem, 3), want);
  }
  {
    cfg.l2.l2 = CacheConfig{1, 2, 32};
    const Machine covered(cfg);
    const std::uint64_t want = 2 * (t.issue_cycles + lat + t.mem_latency) +
                               2 * (t.issue_cycles + lat);
    EXPECT_EQ(covered.run_once(trace, 3), want);
    EXPECT_EQ(covered.run_once_reference(mem, 3), want);
  }
}

TEST(Hierarchy, DeterministicMachineIgnoresRunSeed) {
  // 1-set 1-way L1s (modulo-free single set, forced victim) + LRU L2:
  // no randomness anywhere, so every run seed times identically.
  MemTrace mem;
  for (int i = 0; i < 8; ++i) {
    mem.emit(static_cast<Addr>(0x40 * i), AccessKind::kIFetch);
    mem.emit(static_cast<Addr>(0x2000 + 0x20 * i), AccessKind::kLoad);
  }
  const CompactTrace trace = CompactTrace::from(mem);
  MachineConfig cfg;
  cfg.il1 = CacheConfig{1, 1, 32};
  cfg.dl1 = CacheConfig{1, 1, 32};
  cfg.l2 = HierarchyConfig::shared_l2_lru();
  const Machine machine(cfg);
  const std::uint64_t first = machine.run_once(trace, 0);
  for (std::uint64_t seed = 1; seed < 8; ++seed) {
    EXPECT_EQ(machine.run_once(trace, seed), first) << "seed " << seed;
  }
}

TEST(Hierarchy, ZeroLatencyCoveringL2NeverSlowsARun) {
  // L1-covers-L2 latency edge: with a free probe (latency 0) and an LRU
  // L2 large enough to retain every line, enabling the hierarchy can only
  // convert capacity misses into free hits — never add cycles.
  MemTrace mem;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 24; ++i) {
      mem.emit(static_cast<Addr>(0x40 * i), AccessKind::kIFetch);
      mem.emit(static_cast<Addr>(0x4000 + 0x20 * (i * 7 % 24)),
               AccessKind::kLoad);
    }
  }
  const CompactTrace trace = CompactTrace::from(mem);
  MachineConfig small;
  small.il1 = CacheConfig::example_s8w4();
  small.dl1 = CacheConfig::example_s8w4();
  const Machine one_level(small);

  MachineConfig two_level = small;
  two_level.l2 = HierarchyConfig::shared_l2_lru();
  two_level.l2.latency = 0;
  const Machine with_l2(two_level);

  bool strictly_faster = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const std::uint64_t base = one_level.run_once(trace, seed);
    const std::uint64_t l2 = with_l2.run_once(trace, seed);
    EXPECT_LE(l2, base) << "seed " << seed;
    strictly_faster |= l2 < base;
  }
  EXPECT_TRUE(strictly_faster);  // the L2 actually absorbed misses
}

}  // namespace
}  // namespace mbcr
