#include "cache/random_cache.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace mbcr {
namespace {

CacheConfig small_cache() { return CacheConfig{8, 2, 32}; }

TEST(RandomCache, MissThenHit) {
  RandomCache cache(small_cache(), 1, 2);
  EXPECT_FALSE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x11f));  // same 32B line
  EXPECT_FALSE(cache.access(0x120));  // next line
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(RandomCache, FlushInvalidatesEverything) {
  RandomCache cache(small_cache(), 1, 2);
  cache.access(0x100);
  cache.flush();
  EXPECT_FALSE(cache.access(0x100));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RandomCache, PlacementIsStableWithinARun) {
  RandomCache cache(small_cache(), 123, 5);
  const Addr line = 77;
  const std::uint32_t set = cache.set_of_line(line);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cache.set_of_line(line), set);
}

TEST(RandomCache, ModuloPlacementKeepsBlocksConflictFree) {
  // Random-modulo: lines inside one S-line block land in S distinct sets
  // under every seed; the block's rotation varies across seeds.
  CacheConfig cfg = small_cache();
  cfg.placement = Placement::kModulo;
  std::set<std::uint32_t> rotations;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    RandomCache cache(cfg, seed, 2);
    std::set<std::uint32_t> sets;
    for (Addr line = 16; line < 16 + cfg.sets; ++line) {  // one full block
      sets.insert(cache.set_of_line(line));
    }
    EXPECT_EQ(sets.size(), cfg.sets) << "seed " << seed;
    rotations.insert(cache.set_of_line(16));
  }
  EXPECT_GT(rotations.size(), 1u);
}

TEST(RandomCache, ModuloPlacementPreservesOffsetsWithinABlock) {
  CacheConfig cfg = small_cache();
  cfg.placement = Placement::kModulo;
  RandomCache cache(cfg, 99, 2);
  // Consecutive lines of a block stay consecutive modulo S.
  const std::uint32_t base = cache.set_of_line(0);
  for (Addr line = 1; line < cfg.sets; ++line) {
    EXPECT_EQ(cache.set_of_line(line), (base + line) % cfg.sets);
  }
}

TEST(RandomCache, PlacementVariesAcrossSeeds) {
  const Addr line = 42;
  std::set<std::uint32_t> sets;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    RandomCache cache(small_cache(), seed, 0);
    sets.insert(cache.set_of_line(line));
  }
  // With 64 seeds over 8 sets, essentially all sets must be reached.
  EXPECT_GE(sets.size(), 7u);
}

TEST(RandomCache, PlacementIsUniformAcrossSeeds) {
  // Empirical uniformity of the placement hash over many runs — the
  // foundation of TAC's (1/S)^(k-1) model.
  const CacheConfig cfg = small_cache();
  std::array<int, 8> hist{};
  constexpr int kSeeds = 80000;
  for (int seed = 0; seed < kSeeds; ++seed) {
    RandomCache cache(cfg, static_cast<std::uint64_t>(seed), 0);
    ++hist[cache.set_of_line(1234)];
  }
  const double expected = kSeeds / 8.0;
  double chi2 = 0;
  for (int c : hist) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 24.3);  // chi2(7 dof) at 99.9%
}

TEST(RandomCache, CoMappingProbabilityMatchesModel) {
  // P(two specific lines share a set) must be 1/S.
  const CacheConfig cfg = small_cache();
  int together = 0;
  constexpr int kSeeds = 100000;
  for (int seed = 0; seed < kSeeds; ++seed) {
    RandomCache cache(cfg, static_cast<std::uint64_t>(seed), 0);
    if (cache.set_of_line(10) == cache.set_of_line(999)) ++together;
  }
  const double p = static_cast<double>(together) / kSeeds;
  EXPECT_NEAR(p, 1.0 / 8.0, 0.005);
}

TEST(RandomCache, WorkingSetWithinWaysStabilizesToAllHits) {
  // Pure random replacement picks victims regardless of empty ways (the
  // paper: lines "end up fitting in a cache set after, potentially, few
  // random replacements"), so a within-capacity working set can miss during
  // a short transient but must reach the absorbing all-resident state.
  for (std::uint64_t rseed = 0; rseed < 20; ++rseed) {
    RandomCache cache(small_cache(), 7, rseed);
    for (int warmup = 0; warmup < 64; ++warmup) {
      cache.access_line(1);
      cache.access_line(2);
    }
    for (int round = 0; round < 50; ++round) {
      EXPECT_TRUE(cache.access_line(1)) << "rseed " << rseed;
      EXPECT_TRUE(cache.access_line(2)) << "rseed " << rseed;
    }
  }
}

TEST(RandomCache, OverCapacityRoundRobinThrashesWhenCoMapped) {
  // Find a placement seed mapping three lines into one set of a 2-way
  // cache; a round-robin over them must then miss heavily (the paper's
  // "abrupt increase" event).
  const CacheConfig cfg = small_cache();
  std::uint64_t seed = 0;
  for (;; ++seed) {
    RandomCache probe(cfg, seed, 0);
    if (probe.set_of_line(1) == probe.set_of_line(2) &&
        probe.set_of_line(2) == probe.set_of_line(3)) {
      break;
    }
    ASSERT_LT(seed, 100000u);
  }
  RandomCache cache(cfg, seed, 99);
  std::uint64_t accesses = 0;
  for (int round = 0; round < 300; ++round) {
    cache.access_line(1);
    cache.access_line(2);
    cache.access_line(3);
    accesses += 3;
  }
  const double miss_rate =
      static_cast<double>(cache.misses()) / static_cast<double>(accesses);
  // Random replacement on 3 lines / 2 ways in steady state misses ~ 1/3 of
  // accesses or more.
  EXPECT_GT(miss_rate, 0.25);
}

TEST(RandomCache, ReplacementStreamsDiffer) {
  // Same placement, different replacement seeds => different victim
  // choices => (eventually) different hit patterns on an over-capacity set.
  const CacheConfig cfg{1, 2, 32};  // single set: guaranteed conflicts
  std::vector<bool> h1;
  std::vector<bool> h2;
  RandomCache c1(cfg, 0, 111);
  RandomCache c2(cfg, 0, 222);
  for (int i = 0; i < 200; ++i) {
    const Addr line = static_cast<Addr>(i % 3);
    h1.push_back(c1.access_line(line));
    h2.push_back(c2.access_line(line));
  }
  EXPECT_NE(h1, h2);
}

TEST(RandomCache, ValidatesConfig) {
  EXPECT_THROW(RandomCache(CacheConfig{0, 2, 32}, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(RandomCache(CacheConfig{8, 2, 33}, 0, 0),
               std::invalid_argument);
}

TEST(CacheConfig, SizeAndFactories) {
  EXPECT_EQ(CacheConfig::paper_l1().size_bytes(), 4096u);
  EXPECT_EQ(CacheConfig::example_s8w4().sets, 8u);
  EXPECT_EQ(CacheConfig::example_s8w4().ways, 4u);
}

}  // namespace
}  // namespace mbcr
