#include "cache/single_set.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mbcr {
namespace {

TEST(SingleSetCache, WithinCapacityStabilizesToAllHits) {
  // Pure random victim selection: transients may evict resident lines, but
  // a within-capacity working set reaches the absorbing all-resident state
  // and then never misses again.
  SingleSetCache set(4, 1);
  for (int warmup = 0; warmup < 64; ++warmup) {
    set.access_line(1);
    set.access_line(2);
  }
  const std::uint64_t misses_after_warmup = set.misses();
  for (int r = 0; r < 20; ++r) {
    EXPECT_TRUE(set.access_line(1));
    EXPECT_TRUE(set.access_line(2));
  }
  EXPECT_EQ(set.misses(), misses_after_warmup);
}

TEST(SingleSetCache, FitsExactlyWaysEventually) {
  SingleSetCache set(3, 7);
  for (int warmup = 0; warmup < 128; ++warmup) {
    for (Addr l = 0; l < 3; ++l) set.access_line(l);
  }
  for (int r = 0; r < 20; ++r) {
    for (Addr l = 0; l < 3; ++l) EXPECT_TRUE(set.access_line(l));
  }
}

TEST(SingleSetCache, FlushClears) {
  SingleSetCache set(2, 3);
  set.access_line(5);
  set.flush();
  EXPECT_FALSE(set.access_line(5));
}

TEST(ExpectedMisses, WithinCapacityIsNearColdOnly) {
  // 4 lines in 4 ways: cold misses plus a short random-eviction transient;
  // far below the thrashing regime.
  std::vector<Addr> seq;
  for (int r = 0; r < 100; ++r) {
    for (Addr l = 0; l < 4; ++l) seq.push_back(l);
  }
  const double m = expected_misses_single_set(seq, 4, 42);
  EXPECT_GE(m, 4.0);
  EXPECT_LT(m, 40.0);
}

TEST(ExpectedMisses, OverCapacityRoundRobinThrashes) {
  // 5 lines round-robin in a 4-way random-replacement set: every cycle of
  // 5 accesses has at least one absent line => >= ~1000 misses over 1000
  // cycles (the paper's Sec. 3.1.1 reasoning).
  std::vector<Addr> seq;
  for (int r = 0; r < 1000; ++r) {
    for (Addr l = 0; l < 5; ++l) seq.push_back(l);
  }
  const double m = expected_misses_single_set(seq, 4, 7);
  EXPECT_GT(m, 1000.0);
  EXPECT_LT(m, 5000.0);
}

TEST(ExpectedMisses, EmptyOrNoTrials) {
  EXPECT_DOUBLE_EQ(expected_misses_single_set({}, 4, 1), 0.0);
  std::vector<Addr> seq{1, 2};
  EXPECT_DOUBLE_EQ(expected_misses_single_set(seq, 4, 1, 0), 0.0);
}

TEST(ExpectedMisses, DeterministicInSeed) {
  std::vector<Addr> seq;
  for (int r = 0; r < 50; ++r) {
    for (Addr l = 0; l < 3; ++l) seq.push_back(l);
  }
  EXPECT_DOUBLE_EQ(expected_misses_single_set(seq, 2, 9),
                   expected_misses_single_set(seq, 2, 9));
}

TEST(ExpectedMisses, MoreWaysNeverWorse) {
  std::vector<Addr> seq;
  for (int r = 0; r < 200; ++r) {
    for (Addr l = 0; l < 6; ++l) seq.push_back(l);
  }
  const double w2 = expected_misses_single_set(seq, 2, 5, 16);
  const double w4 = expected_misses_single_set(seq, 4, 5, 16);
  const double w8 = expected_misses_single_set(seq, 8, 5, 16);
  EXPECT_GT(w2, w4);
  EXPECT_GT(w4, w8);
  EXPECT_LT(w8, 60.0);  // fits entirely after a short transient
}

}  // namespace
}  // namespace mbcr
