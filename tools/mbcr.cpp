// mbcr — the paper's evaluation grid as a command line.
//
// Every study the benches/examples compile in can also be requested
// declaratively here, without writing a driver:
//
//   mbcr analyze --suite bs --mode pub_tac            # full Fig. 3 process
//   mbcr analyze --suite bs --mode multipath          # Corollary 2, 8 paths
//   mbcr analyze --suite bs --l2-sets 256 --l2-policy random  # shared L2
//   mbcr measure --suite crc --input all --runs 20000 # raw ECCDF campaigns
//   mbcr pub     --suite cnt                          # PUB-only baseline
//   mbcr tac     --suite bs                           # TAC event detail
//   mbcr list                                         # suite registry
//   mbcr lint --fatal true                            # static verifier verdicts
//   mbcr analyze --suite bs --json bs.json && mbcr report bs.json
//   mbcr analyze --spec bs.json                       # replay a saved spec
//   mbcr fuzz --programs 50 --seeds 8 --rng-seed 1    # differential fuzzing
//   mbcr fuzz --replay tests/fuzz_corpus/corpus/x.json  # replay one repro
//   mbcr sweep --suites bs,crc --seeds 1,2 --shards 4 --json grid.json
//   mbcr sweep --dir mbcr-sweep --resume              # finish a crashed sweep
//
// All subcommands accept the StudySpec flag surface (see `mbcr analyze
// --help`); results can be emitted as JSON (--json FILE) and CSV
// (--csv FILE), with "-" meaning stdout. File outputs are written
// atomically (temp + rename), so a killed run never leaves a torn file.
//
// Exit codes: 0 success, 1 failure, 2 usage error, 3 partial sweep
// (quarantined shards, usable partial result), 130/143 interrupted by
// SIGINT/SIGTERM.
#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/report.hpp"
#include "core/study.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/guided.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/repro.hpp"
#include "ir/bytecode.hpp"
#include "ir/lower.hpp"
#include "ir/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "suite/malardalen.hpp"
#include "sweep/merge.hpp"
#include "sweep/supervisor.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/signal.hpp"
#include "util/table.hpp"

namespace {

using namespace mbcr;

/// The observability surface, shared by every subcommand: metrics and
/// Chrome-trace dumps plus live progress on stderr.
std::map<std::string, std::string> with_obs_flags(
    std::map<std::string, std::string> flags) {
  flags.emplace("metrics-json", "");
  flags.emplace("trace-json", "");
  flags.emplace("progress", "false");
  return flags;
}

std::map<std::string, std::string> study_flags(bool with_mode) {
  std::map<std::string, std::string> flags = core::StudySpec::flag_spec();
  if (!with_mode) flags.erase("mode");
  flags.emplace("json", "");
  flags.emplace("csv", "");
  return flags;
}

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create directory " + path + ": " +
                             std::strerror(errno));
  }
}

void emit_to(const std::string& path, const char* what,
             const std::function<void(std::ostream&)>& write) {
  if (path == "-") {
    write(std::cout);
    return;
  }
  // All file emitters go through the atomic writer: an interrupted or
  // crashed run leaves either the previous file or the new one, never a
  // truncated hybrid.
  std::ostringstream text;
  write(text);
  util::write_file_atomic(path, text.str());
  std::cerr << "[" << what << " written to " << path << "]\n";
}

/// What `--metrics-json` / `--trace-json` / `--progress` asked for.
struct ObsRequest {
  std::string metrics_path;
  std::string trace_path;
  bool progress = false;
};

/// Reads the observability flags (tolerating subcommands without them) and
/// arms the layer before the subcommand runs. Collection (metrics + the
/// StudyResult accounting/metrics blocks) turns on for --metrics-json or
/// --progress; tracing only for --trace-json.
ObsRequest setup_obs(const SubcommandCli::Parsed& cmd) {
  ObsRequest req;
  if (const auto it = cmd.values.find("metrics-json");
      it != cmd.values.end()) {
    req.metrics_path = it->second;
  }
  if (const auto it = cmd.values.find("trace-json"); it != cmd.values.end()) {
    req.trace_path = it->second;
  }
  if (const auto it = cmd.values.find("progress"); it != cmd.values.end()) {
    req.progress = parse_bool("progress", it->second);
  }
  if (!obs::kCompiledIn &&
      (!req.metrics_path.empty() || !req.trace_path.empty() ||
       req.progress)) {
    std::cerr << "mbcr: observability flags have no effect in this build "
                 "(compiled with -DMBCR_OBS=OFF)\n";
  }
  obs::set_enabled(!req.metrics_path.empty() || req.progress);
  obs::set_trace_enabled(!req.trace_path.empty());
  obs::set_progress_enabled(req.progress);
  return req;
}

/// Writes the requested metrics/trace documents after the subcommand
/// finished (so the snapshots cover its whole run).
void emit_obs(const ObsRequest& req) {
  if (!req.metrics_path.empty()) {
    emit_to(req.metrics_path, "metrics", [](std::ostream& os) {
      obs::metrics_document().write(os, 2);
      os << "\n";
    });
  }
  if (!req.trace_path.empty()) {
    emit_to(req.trace_path, "trace", [](std::ostream& os) {
      obs::trace_json().write(os, 2);
      os << "\n";
    });
  }
}

core::StudySpec load_spec_file(const std::string& path) {
  // Fail closed, loudly, as a *usage* error (exit 2): a missing file, torn
  // JSON (parse errors carry the byte offset) or a type-mangled spec all
  // surface with the path attached — never a half-default spec.
  std::ifstream file(path);
  if (!file) throw std::invalid_argument("--spec: cannot read " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  try {
    return core::StudySpec::from_json(json::parse(buffer.str()));
  } catch (const std::exception& e) {
    throw std::invalid_argument("--spec " + path + ": " + e.what());
  }
}

int emit(const core::StudyResult& result, const SubcommandCli::Parsed& cmd) {
  const std::string& json_path = cmd.str("json");
  const std::string& csv_path = cmd.str("csv");
  if (!json_path.empty()) {
    emit_to(json_path, "json",
            [&](std::ostream& os) { result.write_json(os); });
  }
  if (!csv_path.empty()) {
    emit_to(csv_path, "csv", [&](std::ostream& os) { result.write_csv(os); });
  }
  if (json_path != "-" && csv_path != "-") {
    core::print_study(std::cout, result);
  }
  return 0;
}

core::StudyResult run_spec(const SubcommandCli::Parsed& cmd,
                           const char* forced_mode) {
  // --spec FILE replays a saved StudySpec JSON (bare spec or whole result
  // document) verbatim; the study flags on the command line are ignored
  // then, so the file remains the single source of truth.
  const auto spec_path = cmd.values.find("spec");
  core::StudySpec spec =
      (spec_path != cmd.values.end() && !spec_path->second.empty())
          ? load_spec_file(spec_path->second)
          : core::StudySpec::from_flags(cmd.values);
  if (forced_mode) spec.mode = core::parse_study_mode(forced_mode);
  return core::run_study(spec);
}

int cmd_analyze(const SubcommandCli::Parsed& cmd, const char* forced_mode) {
  return emit(run_spec(cmd, forced_mode), cmd);
}

int cmd_tac(const SubcommandCli::Parsed& cmd) {
  const core::StudyResult result = run_spec(cmd, "pub_tac");
  const int code = emit(result, cmd);
  if (cmd.str("json") == "-" || cmd.str("csv") == "-") {
    return code;  // stdout carries machine-readable output; no table
  }
  // TAC event detail per path, beyond the summary lines.
  AsciiTable table({"input", "side", "k", "combos", "extra misses",
                    "p(event)", "R"});
  for (const core::PathAnalysis& pa : result.paths) {
    const auto add_side = [&](const char* side,
                              const tac::TacSequenceResult& r) {
      for (const tac::TacEvent& ev : r.events) {
        std::ostringstream p;
        p << ev.probability;
        table.add_row({pa.input_label, side, std::to_string(ev.group_size),
                       fmt(ev.combination_count, 0), fmt(ev.extra_misses, 1),
                       p.str(), std::to_string(ev.required_runs)});
      }
    };
    add_side("IL1", pa.tac.il1);
    add_side("DL1", pa.tac.dl1);
    add_side("L2", pa.tac.l2);
  }
  if (table.rows() == 0) {
    std::cout << "\nno relevant TAC events above the impact threshold\n";
  } else {
    std::cout << "\nTAC events (impact above threshold):\n";
    table.print(std::cout);
  }
  return code;
}

int cmd_list() {
  AsciiTable table({"benchmark", "classification", "path inputs",
                    "default hits worst path"});
  for (const suite::SuiteEntry& entry : suite::all()) {
    const suite::SuiteBenchmark b = entry.make();
    table.add_row({std::string(entry.name),
                   b.single_path ? "single-path" : "multipath",
                   std::to_string(std::max<std::size_t>(
                       1, b.path_inputs.size())),
                   b.single_path ? "n/a"
                                 : (b.default_hits_worst_path ? "yes" : "no")});
  }
  table.print(std::cout);
  std::cout << "\n11 Malardalen kernels (paper Table 2 order); analyze one "
               "with `mbcr analyze --suite <name>`.\n";
  return 0;
}

/// Derives the fuzz-throughput trend document (BENCH_fuzz.json) from the
/// metrics the fuzz driver collected: overall cases/sec and coverage
/// features-discovered/sec, plus per-oracle run counts and wall time. The
/// per-oracle rows come from the caller's "fuzz.oracle.<name>.{runs,wall_ns}"
/// counter snapshot (taken before any blind baseline re-run, so they
/// describe the reported run only). `blind`, when present, is a
/// same-budget same-seed mutation-off re-run — the coverage floor the
/// guided schedule has to beat, recorded next to the guided numbers.
json::Value fuzz_bench_document(const fuzz::GuidedConfig& cfg,
                                const fuzz::GuidedReport& report,
                                double wall_s, const json::Value& metrics,
                                const fuzz::GuidedReport* blind,
                                double blind_wall_s) {
  json::Object doc;
  doc.emplace_back("schema", "mbcr-bench-fuzz-v2");
  doc.emplace_back("obs_compiled_in", obs::kCompiledIn);
  doc.emplace_back("guided", report.guided);
  doc.emplace_back("coverage_measured", report.coverage_measured);
  doc.emplace_back("programs", cfg.base.programs);
  doc.emplace_back("seeds", cfg.base.seeds);
  doc.emplace_back("oracle", cfg.base.oracle);
  doc.emplace_back("rng_seed", std::to_string(cfg.base.rng_seed));
  doc.emplace_back("cases", report.fuzz.cases_run);
  doc.emplace_back("oracle_runs", report.fuzz.oracle_runs);
  doc.emplace_back("blind_cases", report.blind_cases);
  doc.emplace_back("mutated_cases", report.mutated_cases);
  doc.emplace_back("rejected_cases", report.rejected_cases);
  doc.emplace_back("wall_s", wall_s);
  doc.emplace_back("cases_per_sec",
                   wall_s > 0.0
                       ? static_cast<double>(report.fuzz.cases_run) / wall_s
                       : 0.0);
  doc.emplace_back("features_discovered", report.features_discovered);
  doc.emplace_back(
      "features_per_sec",
      wall_s > 0.0 ? static_cast<double>(report.features_discovered) / wall_s
                   : 0.0);
  doc.emplace_back(
      "features_per_case",
      report.fuzz.cases_run > 0
          ? static_cast<double>(report.features_discovered) /
                static_cast<double>(report.fuzz.cases_run)
          : 0.0);
  doc.emplace_back("corpus_entries", report.corpus.size());

  if (blind != nullptr) {
    json::Object baseline;
    baseline.emplace_back("cases", blind->fuzz.cases_run);
    baseline.emplace_back("features_discovered", blind->features_discovered);
    baseline.emplace_back(
        "features_per_case",
        blind->fuzz.cases_run > 0
            ? static_cast<double>(blind->features_discovered) /
                  static_cast<double>(blind->fuzz.cases_run)
            : 0.0);
    baseline.emplace_back(
        "features_per_sec",
        blind_wall_s > 0.0
            ? static_cast<double>(blind->features_discovered) / blind_wall_s
            : 0.0);
    doc.emplace_back("blind_baseline", json::Value(std::move(baseline)));
  }

  // One row per oracle: runs, total wall, and the mean latency per run.
  const json::Value& snapshot = metrics;
  const json::Object& counters = snapshot.at("counters").as_object();
  json::Object oracles;
  constexpr std::string_view kPrefix = "fuzz.oracle.";
  constexpr std::string_view kRunsSuffix = ".runs";
  for (const auto& [name, value] : counters) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() < kRunsSuffix.size() ||
        name.compare(name.size() - kRunsSuffix.size(), kRunsSuffix.size(),
                     kRunsSuffix) != 0) {
      continue;
    }
    const std::string oracle_name = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kRunsSuffix.size());
    const double runs = value.as_number();
    const json::Value* wall_ns =
        snapshot.at("counters").find(std::string(kPrefix) + oracle_name +
                                     ".wall_ns");
    const double total_ns = wall_ns != nullptr ? wall_ns->as_number() : 0.0;
    json::Object row;
    row.emplace_back("runs", runs);
    row.emplace_back("wall_s", total_ns * 1e-9);
    row.emplace_back("mean_us_per_run",
                     runs > 0.0 ? total_ns * 1e-3 / runs : 0.0);
    oracles.emplace_back(oracle_name, json::Value(std::move(row)));
  }
  doc.emplace_back("oracles", json::Value(std::move(oracles)));
  return json::Value(std::move(doc));
}

int cmd_fuzz(const SubcommandCli::Parsed& cmd) {
  if (const std::string& path = cmd.str("replay"); !path.empty()) {
    const fuzz::Repro repro = fuzz::load_repro(path);
    const fuzz::OracleOutcome outcome = fuzz::run_repro(repro);
    if (outcome.ok) {
      std::cout << "repro " << path << " (oracle " << repro.oracle
                << "): PASS\n";
      return 0;
    }
    std::cerr << "repro " << path << " FAILED: " << outcome.detail << "\n";
    return 1;
  }

  fuzz::GuidedConfig gcfg;
  fuzz::FuzzConfig& cfg = gcfg.base;
  cfg.programs = static_cast<std::size_t>(cmd.integer("programs"));
  cfg.seeds = static_cast<std::size_t>(cmd.integer("seeds"));
  cfg.time_budget_s = cmd.real("time-budget");
  cfg.rng_seed = static_cast<std::uint64_t>(cmd.integer("rng-seed"));
  cfg.oracle = cmd.str("oracle");
  cfg.corpus_dir = cmd.str("corpus");
  cfg.shrink = parse_bool("shrink", cmd.str("shrink"));
  cfg.log = &std::cerr;
  gcfg.guided = parse_bool("guided", cmd.str("guided"));
  gcfg.corpus_out = cmd.str("corpus-out");
  const std::string& coverage_path = cmd.str("coverage-json");
  const std::string& bench_path = cmd.str("bench-json");

  // The guided/coverage driver measures per-case coverage; --bench-json
  // (v2 reports features alongside cases/sec) and the coverage/corpus
  // outputs all route through it. A plain `mbcr fuzz` keeps the blind
  // driver with zero obs involvement.
  const bool with_coverage = gcfg.guided || !gcfg.corpus_out.empty() ||
                             !coverage_path.empty() || !bench_path.empty();

  // --bench-json needs the per-oracle latency counters, so it arms
  // collection itself (from a clean slate) even without --metrics-json.
  if (!bench_path.empty()) {
    if (!obs::kCompiledIn) {
      std::cerr << "mbcr: --bench-json per-oracle latencies unavailable "
                   "(compiled with -DMBCR_OBS=OFF)\n";
    }
    obs::reset_metrics();
    obs::set_enabled(true);
  }
  if (!gcfg.corpus_out.empty()) make_dir(gcfg.corpus_out);
  const auto fuzz_start = std::chrono::steady_clock::now();

  // run_guided/run_fuzz validate the config (unknown --oracle names
  // included) before any case runs; their invalid_argument reaches main's
  // usage-error path (stderr, exit 2).
  fuzz::GuidedReport greport;
  if (with_coverage) {
    greport = fuzz::run_guided(gcfg);
  } else {
    greport.fuzz = fuzz::run_fuzz(cfg);
    greport.blind_cases = greport.fuzz.cases_run;
  }
  const fuzz::FuzzReport& report = greport.fuzz;

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - fuzz_start)
                            .count();
  if (!bench_path.empty()) {
    // Snapshot the oracle counters before the baseline re-run below so the
    // per-oracle latency rows describe the reported run only.
    const json::Value metrics = obs::metrics_json();
    fuzz::GuidedReport blind;
    double blind_wall_s = 0.0;
    bool have_blind = false;
    if (greport.guided && greport.coverage_measured &&
        report.interrupted_by == 0) {
      fuzz::GuidedConfig bcfg = gcfg;
      bcfg.guided = false;
      bcfg.corpus_out.clear();
      bcfg.base.log = nullptr;
      const auto blind_start = std::chrono::steady_clock::now();
      blind = fuzz::run_guided(bcfg);
      blind_wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - blind_start)
                         .count();
      have_blind = true;
    }
    const json::Value doc =
        fuzz_bench_document(gcfg, greport, wall_s, metrics,
                            have_blind ? &blind : nullptr, blind_wall_s);
    emit_to(bench_path, "fuzz bench", [&](std::ostream& os) {
      doc.write(os, 2);
      os << "\n";
    });
  }
  if (!coverage_path.empty()) {
    const json::Value doc = fuzz::coverage_document(gcfg, greport);
    emit_to(coverage_path, "fuzz coverage", [&](std::ostream& os) {
      doc.write(os, 2);
      os << "\n";
    });
  }

  std::cout << "fuzz: " << report.cases_run << " program(s) x " << cfg.seeds
            << " seed(s), " << report.oracle_runs << " oracle run(s): "
            << (report.ok() ? "all passed"
                            : std::to_string(report.failures.size()) +
                                  " FAILURE(S)")
            << "\n";
  if (with_coverage) {
    std::cout << "fuzz: " << greport.features_discovered
              << " coverage feature(s), " << greport.corpus.size()
              << " corpus seed(s) (" << greport.blind_cases << " blind / "
              << greport.mutated_cases << " mutated / "
              << greport.rejected_cases << " rejected case(s))\n";
  }
  for (const fuzz::FuzzFailure& f : report.failures) {
    std::cout << "  case " << f.case_index << " oracle " << f.oracle << ": "
              << f.detail << "\n";
    if (!f.repro_path.empty()) {
      std::cout << "    repro: " << f.repro_path << "\n";
    }
  }
  if (report.interrupted_by != 0) {
    // The campaign stopped early on SIGINT/SIGTERM; everything written so
    // far (repros, corpus seeds, bench doc) is intact, but signal the
    // interruption.
    std::cerr << "mbcr: fuzz interrupted by signal " << report.interrupted_by
              << " after " << report.cases_run << " case(s)\n";
    return 128 + report.interrupted_by;
  }
  return report.ok() ? 0 : 1;
}

int cmd_lint(const SubcommandCli::Parsed& cmd) {
  // Compile every suite kernel, run the static verifier over the checked
  // bytecode, then elide the proven accesses and re-verify the elided
  // program against its recorded proofs. One verdict row per kernel; any
  // diagnostic is printed in full below the table. --fatal turns a
  // rejection into exit 1 (the CI smoke uses it).
  const std::string& only = cmd.str("suite");
  const bool fatal = parse_bool("fatal", cmd.str("fatal"));
  if (!only.empty() && suite::find(only) == nullptr) {
    throw std::invalid_argument("unknown --suite " + only);
  }

  AsciiTable table({"kernel", "ops", "max stack", "dead ops", "elem proven",
                    "elided", "verdict"});
  std::size_t rejected = 0;
  std::ostringstream diagnostics;
  for (const suite::SuiteEntry& entry : suite::all()) {
    if (!only.empty() && only != entry.name) continue;
    const suite::SuiteBenchmark bench = entry.make();
    const ir::Linked linked = ir::lower(bench.program);
    ir::BytecodeProgram bc = ir::compile(bench.program, linked);
    const ir::VerifyResult facts = ir::verify(bc);

    std::string verdict = "ok";
    std::size_t elided = 0;
    if (!facts.ok()) {
      verdict = "REJECTED";
      ++rejected;
      diagnostics << entry.name << ":\n" << facts.describe();
    } else {
      elided = ir::apply_elision(bc, facts);
      if (const ir::VerifyResult audit = ir::verify(bc); !audit.ok()) {
        verdict = "REJECTED (elided)";
        ++rejected;
        diagnostics << entry.name << " (after elision):\n" << audit.describe();
      }
    }
    table.add_row({std::string(entry.name), std::to_string(bc.ops.size()),
                   std::to_string(facts.computed_max_stack),
                   std::to_string(facts.dead_ops.size()),
                   std::to_string(facts.provable.size()) + "/" +
                       std::to_string(facts.elem_ops),
                   std::to_string(elided), verdict});
  }
  table.print(std::cout);
  if (rejected > 0) {
    std::cout << "\n" << diagnostics.str();
    std::cout << rejected << " kernel(s) rejected by the verifier\n";
  } else {
    std::cout << "\nall kernels verify clean (checked and elided)\n";
  }
  return (fatal && rejected > 0) ? 1 : 0;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : text) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("--") + flag +
                                ": not an unsigned integer: " + text);
  }
}

/// The sweep axes + supervisor knobs on top of the StudySpec surface.
std::map<std::string, std::string> sweep_flags() {
  std::map<std::string, std::string> flags = core::StudySpec::flag_spec();
  flags.emplace("suites", "");       // comma lists; empty = base value
  flags.emplace("geometries", "");   // e.g. 64x2,128x4
  flags.emplace("l2-policies", "");  // random,lru (needs L2 enabled)
  flags.emplace("placements", "");   // hash,modulo
  flags.emplace("seeds", "");        // campaign master seeds
  flags.emplace("slice-runs", "0");  // measure mode: runs per unit
  flags.emplace("shards", "1");
  flags.emplace("jobs", "0");        // 0 = min(shards, cores)
  flags.emplace("retries", "2");
  flags.emplace("timeout-s", "0");   // per-attempt; 0 = unlimited
  flags.emplace("backoff-ms", "100");
  flags.emplace("backoff-max-ms", "5000");
  flags.emplace("dir", "mbcr-sweep");
  flags.emplace("resume", "false");
  flags.emplace("json", "");
  return flags;
}

int cmd_sweep(const SubcommandCli::Parsed& cmd, const char* argv0) {
  sweep::SupervisorConfig config;
  config.shards = static_cast<std::size_t>(cmd.integer("shards"));
  config.jobs = static_cast<std::size_t>(cmd.integer("jobs"));
  config.retries = static_cast<int>(cmd.integer("retries"));
  config.timeout_s = cmd.real("timeout-s");
  config.backoff_base_ms =
      static_cast<std::uint64_t>(cmd.integer("backoff-ms"));
  config.backoff_max_ms =
      static_cast<std::uint64_t>(cmd.integer("backoff-max-ms"));
  config.dir = cmd.str("dir");
  config.resume = parse_bool("resume", cmd.str("resume"));
  config.argv0 = argv0;
  config.log = &std::cerr;

  sweep::SweepSpec spec;
  if (config.resume) {
    // On --resume the journaled manifest is the single source of truth;
    // the study/axis flags on the command line are ignored, so a resumed
    // sweep cannot silently diverge from what its journal records.
    spec = sweep::SweepSpec::from_json(
        sweep::load_manifest(config.dir).spec);
  } else {
    spec.base = core::StudySpec::from_flags(cmd.values);
    spec.suites = split_list(cmd.str("suites"));
    spec.geometries = split_list(cmd.str("geometries"));
    spec.l2_policies = split_list(cmd.str("l2-policies"));
    spec.placements = split_list(cmd.str("placements"));
    for (const std::string& s : split_list(cmd.str("seeds"))) {
      spec.seeds.push_back(parse_u64("seeds", s));
    }
    spec.slice_runs = static_cast<std::size_t>(cmd.integer("slice-runs"));
  }

  const sweep::SweepOutcome outcome = sweep::run_sweep(spec, config);
  const sweep::MergeOutput merged = sweep::merge_sweep(config.dir);

  const std::string& json_path = cmd.str("json");
  if (!json_path.empty()) {
    emit_to(json_path, "sweep json", [&](std::ostream& os) {
      merged.doc.write(os, 2);
      os << "\n";
    });
  }
  if (json_path != "-") {
    std::cout << "sweep " << outcome.sweep_id << ": " << merged.points
              << " point(s) over " << outcome.shards << " shard(s); "
              << outcome.completed.size() << " completed, "
              << outcome.skipped.size() << " skipped (resume), "
              << outcome.quarantined.size() << " quarantined\n";
    if (!outcome.quarantined.empty()) {
      std::cout << "  quarantined shard(s):";
      for (const std::size_t s : outcome.quarantined) std::cout << " " << s;
      std::cout << "\n";
    }
    if (merged.partial) {
      std::cout << "  partial result: " << merged.points_complete << "/"
                << merged.points
                << " point(s) complete; re-run with --resume to retry the "
                   "failed shards\n";
    }
  }
  if (outcome.interrupted_by != 0) {
    std::cerr << "mbcr: sweep interrupted by signal " << outcome.interrupted_by
              << "; journal kept in " << config.dir
              << " (finish with --resume)\n";
    return 128 + outcome.interrupted_by;
  }
  if (merged.partial) return merged.any_results() ? 3 : 1;
  return 0;
}

int cmd_worker(const SubcommandCli::Parsed& cmd) {
  return sweep::run_worker(cmd.str("dir"),
                           static_cast<std::size_t>(cmd.integer("shard")),
                           static_cast<int>(cmd.integer("attempt")));
}

int cmd_report(const SubcommandCli::Parsed& cmd) {
  const std::string& path = cmd.str("file");
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const json::Value doc = json::parse(buffer.str());
  core::print_study_json(std::cout, doc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SubcommandCli cli(
      "mbcr",
      "mbcr — measurement-based probabilistic timing analysis with PUB+TAC\n"
      "(DAC'18 reproduction): declarative studies over the Malardalen suite\n"
      "and random programs, on the randomized-cache platform model.");
  std::map<std::string, std::string> analyze_flags =
      study_flags(/*with_mode=*/true);
  analyze_flags.emplace("spec", "");  // saved StudySpec JSON as input
  cli.add_command({"analyze", "run a study (choose the mode with --mode)",
                   with_obs_flags(std::move(analyze_flags)), {}});
  cli.add_command({"measure",
                   "raw measurement campaign, no EVT (mode=measure)",
                   with_obs_flags(study_flags(false)), {}});
  cli.add_command({"pub", "PUB-only analysis, no TAC (mode=pub)",
                   with_obs_flags(study_flags(false)), {}});
  cli.add_command({"tac", "PUB+TAC analysis with TAC event detail",
                   with_obs_flags(study_flags(false)), {}});
  cli.add_command({"list", "list the benchmark suite registry",
                   with_obs_flags({}), {}});
  cli.add_command({"lint",
                   "static verifier verdicts for the suite kernels",
                   with_obs_flags({{"suite", ""}, {"fatal", "false"}}),
                   {}});
  cli.add_command({"report", "pretty-print a saved JSON study result",
                   with_obs_flags({}), {"file"}});
  cli.add_command({"fuzz",
                   "differential fuzzing: random programs vs the oracles",
                   with_obs_flags({{"programs", "50"},
                                   {"seeds", "8"},
                                   {"time-budget", "0"},
                                   {"oracle", "all"},
                                   {"rng-seed", "1"},
                                   {"corpus", ""},
                                   {"shrink", "true"},
                                   {"replay", ""},
                                   {"guided", "false"},
                                   {"corpus-out", ""},
                                   {"coverage-json", ""},
                                   {"bench-json", ""}}),
                   {}});
  cli.add_command({"sweep",
                   "fault-tolerant sharded sweep over a study grid",
                   with_obs_flags(sweep_flags()), {}});
  cli.add_command({"worker",
                   "internal: execute one sweep shard (spawned by sweep)",
                   with_obs_flags(
                       {{"dir", "mbcr-sweep"}, {"shard", "0"},
                        {"attempt", "0"}}),
                   {}});

  const SubcommandCli::Parsed cmd = cli.parse_or_exit(argc, argv);
  util::install_shutdown_handlers();
  try {
    const ObsRequest obs_req = setup_obs(cmd);
    const int code = [&]() -> int {
      if (cmd.command == "analyze") return cmd_analyze(cmd, nullptr);
      if (cmd.command == "measure") return cmd_analyze(cmd, "measure");
      if (cmd.command == "pub") return cmd_analyze(cmd, "pub");
      if (cmd.command == "tac") return cmd_tac(cmd);
      if (cmd.command == "list") return cmd_list();
      if (cmd.command == "lint") return cmd_lint(cmd);
      if (cmd.command == "report") return cmd_report(cmd);
      if (cmd.command == "fuzz") return cmd_fuzz(cmd);
      if (cmd.command == "sweep") return cmd_sweep(cmd, argv[0]);
      if (cmd.command == "worker") return cmd_worker(cmd);
      std::cerr << "mbcr: unhandled subcommand " << cmd.command << "\n";
      return 1;
    }();
    emit_obs(obs_req);
    return code;
  } catch (const util::ShutdownRequested& e) {
    // A campaign/fuzz loop unwound on SIGINT/SIGTERM: conventional shell
    // exit code (130/143), distinct from failures and usage errors.
    std::cerr << "mbcr: interrupted by signal " << e.signal() << "\n";
    return e.exit_code();
  } catch (const std::invalid_argument& e) {
    // Bad flag *values* (unknown enum spellings like --l2-policy bogus,
    // malformed numbers, inconsistent specs) take the same loud path as
    // unknown flags: stderr + exit 2, never a silent default.
    exit_usage_error("mbcr", e.what());
  } catch (const std::exception& e) {
    std::cerr << "mbcr: " << e.what() << "\n";
    return 1;
  }
}
