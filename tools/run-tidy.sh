#!/usr/bin/env sh
# clang-tidy over the repo sources, driven by the compile database.
#
#   tools/run-tidy.sh [build-dir] [file...]
#
# With no file arguments, lints every .cpp under src/ and tools/. Pass
# explicit files (e.g. a git diff) to lint just those — the CI diff step
# does exactly that:
#
#   git diff --name-only origin/main...HEAD -- 'src/*.cpp' 'tools/*.cpp' \
#     | xargs tools/run-tidy.sh build
#
# The build dir must have been configured already (compile_commands.json
# is exported unconditionally; see CMakeLists.txt).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
[ $# -gt 0 ] && shift

if [ ! -f "$build/compile_commands.json" ]; then
  echo "run-tidy: $build/compile_commands.json not found;" \
       "configure the build first (cmake -B \"$build\" -S \"$repo\")" >&2
  exit 2
fi

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run-tidy: $tidy not found (set CLANG_TIDY to override)" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  files=$*
else
  files=$(find "$repo/src" "$repo/tools" -name '*.cpp' | sort)
fi

[ -z "$files" ] && { echo "run-tidy: nothing to lint"; exit 0; }

# shellcheck disable=SC2086 — word splitting of $files is intended.
exec "$tidy" -p "$build" --quiet $files
