// Writing your own program in the IR and running the full analysis.
//
// The kernel below is a small sensor-fusion step like the automotive
// software the paper motivates: read a window of samples, branch on a
// data-dependent validity test, accumulate into one of two result cells.
// The branch makes it multipath; the validity rate is input data, so no
// single test vector covers all paths — exactly the situation PUB+TAC
// solves.
//
// Build & run:  ./build/examples/custom_program
#include <iostream>

#include "core/analyzer.hpp"
#include "util/table.hpp"
#include "core/report.hpp"
#include "ir/printer.hpp"
#include "pub/pub_transform.hpp"
#include "pub/verify.hpp"

int main() {
  using namespace mbcr;
  using namespace mbcr::ir;

  // --- 1. Declare the program ---------------------------------------
  Program p;
  p.name = "fuse";
  p.arrays.push_back({"samples", 32, {}});
  p.arrays.push_back({"weights", 8, {3, 5, 7, 9, 9, 7, 5, 3}});
  p.arrays.push_back({"result", 2, {}});
  p.scalars = {"i", "k", "acc", "v", "valid"};

  StmtPtr weigh = assign(
      "acc", var("acc") + ld("samples", var("i") + var("k")) *
                              ld("weights", var("k")));
  StmtPtr window = seq({
      assign("acc", cst(0)),
      for_loop("k", cst(0), var("k") < cst(8), 1, std::move(weigh), 8),
      assign("v", var("acc") >> cst(3)),
      // Data-dependent branch: plausibility check.
      if_else(land(var("v") > cst(-500), var("v") < cst(500)),
              store("result", cst(0), ld("result", cst(0)) + var("v")),
              seq({
                  store("result", cst(1), ld("result", cst(1)) + cst(1)),
                  assign("valid", cst(0)),
              })),
  });
  p.body = seq({
      assign("valid", cst(1)),
      for_loop("i", cst(0), var("i") < cst(24), 1, std::move(window), 24),
  });
  validate(p);

  InputVector in;
  in.label = "nominal";
  std::vector<Value> samples;
  for (Value i = 0; i < 32; ++i) samples.push_back((i * 131) % 700 - 350);
  in.arrays["samples"] = samples;

  // --- 2. Inspect what PUB does to it -------------------------------
  const Program pubbed = pub::apply_pub(p);
  std::cout << "=== original ===\n" << to_string(p) << "\n";
  std::cout << "=== pubbed (ghosts = functionally-innocuous padding) ===\n"
            << to_string(pubbed) << "\n";

  const pub::PubCheckResult check = pub::check_pub_invariants(p, pubbed, in);
  std::cout << "PUB invariants: tokens subsequence="
            << (check.tokens_are_subsequence ? "ok" : "VIOLATED")
            << ", state preserved="
            << (check.state_preserved ? "ok" : "VIOLATED") << " ("
            << check.orig_tokens << " -> " << check.pub_tokens
            << " tokens)\n\n";

  // --- 3. Full analysis against the randomized platform -------------
  const core::Analyzer analyzer;
  const core::PathAnalysis res = analyzer.analyze_pubbed(p, in);
  core::print_path_analysis(std::cout, res);

  // Compare with what the user would have gotten WITHOUT path coverage:
  const core::PathAnalysis naive = analyzer.analyze_original(p, in);
  std::cout << "\nplain MBPTA on this single input: pWCET@1e-12 = "
            << mbcr::fmt(naive.pwcet.at(1e-12), 0)
            << " cycles (valid only for the observed path!)\n";
  std::cout << "PUB+TAC (all paths, all layouts):  pWCET@1e-12 = "
            << mbcr::fmt(res.pwcet.at(1e-12), 0) << " cycles\n";
  return 0;
}
