// Quickstart: the paper's full application process (Fig. 3) in ~30 lines.
//
//   P_orig --PUB--> P_pub --trace--> TAC --> R_pub+tac
//        --campaign--> execution times --MBPTA--> pWCET
//
// Analyzes the bs benchmark and prints the pWCET curve that reliably
// upper-bounds EVERY path of the original program under ALL cache layouts
// occurring with relevant probability.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/report.hpp"
#include "core/study.hpp"
#include "util/table.hpp"

int main() {
  using namespace mbcr;

  // 1. One declarative study: the bs benchmark with its default input
  //    (any path works — Observation 3 of the paper; more paths only help
  //    tightness), full PUB+TAC mode, the paper's platform defaults.
  //    `mbcr analyze --suite bs --mode pub_tac` runs the same request.
  const core::StudySpec spec{.suite = "bs"};

  // 2. run_study bundles the platform model (4KB 2-way random
  //    placement/replacement L1s), PUB, TAC and MBPTA.
  const core::StudyResult study = core::run_study(spec);
  const core::PathAnalysis& result = study.paths.front();

  std::cout << "=== PUB+TAC analysis of '" << spec.suite << "' ===\n";
  core::print_path_analysis(std::cout, result);

  std::cout << "\npWCET curve (exceedance probability, cycles):\n";
  core::print_pwcet_curve(std::cout, result.pwcet, /*max_exp=*/12);

  std::cout << "\nInterpretation: at probability 1e-12 per run, the "
               "execution time of ANY path of bs,\nunder ANY memory "
               "layout, exceeds "
            << mbcr::fmt(result.pwcet.at(1e-12), 0) << " cycles with probability "
            << "below 1e-12 — the certification-grade bound the paper "
               "delivers.\n";
  return 0;
}
