// Quickstart: the paper's full application process (Fig. 3) in ~30 lines.
//
//   P_orig --PUB--> P_pub --trace--> TAC --> R_pub+tac
//        --campaign--> execution times --MBPTA--> pWCET
//
// Analyzes the bs benchmark and prints the pWCET curve that reliably
// upper-bounds EVERY path of the original program under ALL cache layouts
// occurring with relevant probability.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/analyzer.hpp"
#include "util/table.hpp"
#include "core/report.hpp"
#include "suite/malardalen.hpp"

int main() {
  using namespace mbcr;

  // 1. A multipath program and one input vector (any path works —
  //    Observation 3 of the paper; more paths only help tightness).
  const suite::SuiteBenchmark bs = suite::make_bs();

  // 2. The analyzer bundles the platform model (4KB 2-way random
  //    placement/replacement L1s), PUB, TAC and MBPTA.
  const core::Analyzer analyzer;

  // 3. Full PUB+TAC analysis.
  const core::PathAnalysis result =
      analyzer.analyze_pubbed(bs.program, bs.default_input);

  std::cout << "=== PUB+TAC analysis of '" << bs.program.name << "' ===\n";
  core::print_path_analysis(std::cout, result);

  std::cout << "\npWCET curve (exceedance probability, cycles):\n";
  core::print_pwcet_curve(std::cout, result.pwcet, /*max_exp=*/12);

  std::cout << "\nInterpretation: at probability 1e-12 per run, the "
               "execution time of ANY path of bs,\nunder ANY memory "
               "layout, exceeds "
            << mbcr::fmt(result.pwcet.at(1e-12), 0) << " cycles with probability "
            << "below 1e-12 — the certification-grade bound the paper "
               "delivers.\n";
  return 0;
}
