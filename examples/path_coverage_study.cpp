// Path-coverage study on crc: why user inputs are not enough.
//
// crc's execution path depends on every bit of the message; the worst-case
// path cannot be constructed by inspection (paper Sec. 4.2). This example
// measures several user inputs on the original program, then shows that
// one pubbed path upper-bounds them all — including message patterns never
// measured.
//
// Build & run:  ./build/examples/path_coverage_study
#include <algorithm>
#include <iostream>

#include "core/analyzer.hpp"
#include "mbpta/eccdf.hpp"
#include "pub/pub_transform.hpp"
#include "suite/malardalen.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mbcr;

  const suite::SuiteBenchmark crc = suite::make_crc();
  const core::Analyzer analyzer;
  constexpr std::size_t kRuns = 20'000;

  std::cout << "=== crc: original program under different inputs ===\n";
  AsciiTable table({"input", "mean", "max observed"});
  double global_max = 0;
  for (const auto& in : crc.path_inputs) {
    const auto times = analyzer.measure(crc.program, in, kRuns);
    const double mx = *std::max_element(times.begin(), times.end());
    global_max = std::max(global_max, mx);
    table.add_row({in.label, fmt(mean(times), 0), fmt(mx, 0)});
  }
  table.print(std::cout);
  std::cout << "\nNote the spread across inputs: each input exercises a "
               "different path, and\nnobody knows which message maximizes "
               "the remainder-dependent branch count.\n\n";

  std::cout << "=== the pubbed program: any path covers them all ===\n";
  const ir::Program pubbed = pub::apply_pub(crc.program);
  AsciiTable ptable({"pubbed path", "mean", "max observed"});
  for (const auto& in : crc.path_inputs) {
    const auto times = analyzer.measure(pubbed, in, kRuns);
    ptable.add_row({in.label, fmt(mean(times), 0),
                    fmt(*std::max_element(times.begin(), times.end()), 0)});
  }
  ptable.print(std::cout);

  const core::PathAnalysis res =
      analyzer.analyze_pubbed(crc.program, crc.default_input);
  std::cout << "\npWCET@1e-12 from ONE pubbed path (" << res.r_total
            << " runs): " << fmt(res.pwcet.at(1e-12), 0) << " cycles\n";
  std::cout << "highest execution time ever observed on the original, any "
               "input: "
            << fmt(global_max, 0) << " cycles\n";
  std::cout << "upper-bounds every measured original path: "
            << (res.pwcet.at(1e-12) > global_max ? "YES" : "NO")
            << " — and, by the paper's Corollary 1, every unmeasured one "
              "too.\n";
  return 0;
}
