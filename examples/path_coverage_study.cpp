// Path-coverage study on crc: why user inputs are not enough.
//
// crc's execution path depends on every bit of the message; the worst-case
// path cannot be constructed by inspection (paper Sec. 4.2). This example
// measures several user inputs on the original program, then shows that
// one pubbed path upper-bounds them all — including message patterns never
// measured. All three steps are declarative studies (`mbcr measure --suite
// crc --input all`, the same with --measure-pub, and `mbcr analyze --suite
// crc --mode pub_tac`).
//
// Build & run:  ./build/examples/path_coverage_study
#include <algorithm>
#include <iostream>

#include "core/study.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mbcr;

  constexpr std::size_t kRuns = 20'000;
  const core::StudySpec measure_orig{.suite = "crc",
                                     .mode = core::StudyMode::kMeasure,
                                     .inputs = core::InputSelection::kAllPaths,
                                     .measure_runs = kRuns};

  std::cout << "=== crc: original program under different inputs ===\n";
  const core::StudyResult orig = core::run_study(measure_orig);
  AsciiTable table({"input", "mean", "max observed"});
  double global_max = 0;
  for (const core::MeasureSample& s : orig.samples) {
    const double mx = *std::max_element(s.times.begin(), s.times.end());
    global_max = std::max(global_max, mx);
    table.add_row({s.input_label, fmt(mean(s.times), 0), fmt(mx, 0)});
  }
  table.print(std::cout);
  std::cout << "\nNote the spread across inputs: each input exercises a "
               "different path, and\nnobody knows which message maximizes "
               "the remainder-dependent branch count.\n\n";

  std::cout << "=== the pubbed program: any path covers them all ===\n";
  core::StudySpec measure_pub = measure_orig;
  measure_pub.measure_pub = true;
  const core::StudyResult pubbed = core::run_study(measure_pub);
  AsciiTable ptable({"pubbed path", "mean", "max observed"});
  for (const core::MeasureSample& s : pubbed.samples) {
    ptable.add_row({s.input_label, fmt(mean(s.times), 0),
                    fmt(*std::max_element(s.times.begin(), s.times.end()), 0)});
  }
  ptable.print(std::cout);

  const core::StudySpec analyze{.suite = "crc"};  // defaults: pub_tac
  const core::StudyResult study = core::run_study(analyze);
  const core::PathAnalysis& res = study.paths.front();
  std::cout << "\npWCET@1e-12 from ONE pubbed path (" << res.r_total
            << " runs): " << fmt(res.pwcet.at(1e-12), 0) << " cycles\n";
  std::cout << "highest execution time ever observed on the original, any "
               "input: "
            << fmt(global_max, 0) << " cycles\n";
  std::cout << "upper-bounds every measured original path: "
            << (res.pwcet.at(1e-12) > global_max ? "YES" : "NO")
            << " — and, by the paper's Corollary 1, every unmeasured one "
              "too.\n";
  return 0;
}
