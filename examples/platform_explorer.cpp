// Platform exploration: how campaign size interacts with rare cache
// layouts (the mechanism behind the paper's Fig. 4 knee).
//
// A synthetic kernel cycles through 5 hot lines on a small 8-set 4-way
// randomized data cache. With probability (1/8)^4 ~ 2.4e-4 all five lines
// land in one set and the run thrashes. Small campaigns rarely see it;
// TAC sizes the campaign so missing it has probability < 1e-9.
//
// Build & run:  ./build/examples/platform_explorer
#include <algorithm>
#include <iostream>

#include "core/analyzer.hpp"
#include "ir/interp.hpp"
#include "mbpta/eccdf.hpp"
#include "tac/runs.hpp"
#include "util/table.hpp"

int main() {
  using namespace mbcr;
  using namespace mbcr::ir;

  Program p;
  p.name = "hotlines";
  p.arrays.push_back({"buf", 40, {}});
  p.scalars = {"i", "r", "acc"};
  p.body = seq({
      assign("acc", cst(0)),
      for_loop("r", cst(0), var("r") < cst(300), 1,
               for_loop("i", cst(0), var("i") < cst(5), 1,
                        assign("acc", var("acc") + ld("buf", var("i") * cst(8))),
                        5),
               300),
  });
  validate(p);

  core::AnalysisConfig cfg;
  cfg.machine.dl1 = CacheConfig::example_s8w4();  // S=8, W=4
  cfg.machine.il1 = CacheConfig{256, 4, 32};      // keep the icache quiet
  const core::Analyzer analyzer(cfg);

  // TAC's prediction for this trace.
  const ExecResult exec = lower_and_execute(p, {});
  const auto tac_res =
      tac::analyze_trace(exec.trace, cfg.machine.il1, cfg.machine.dl1,
                         /*baseline_cycles=*/30000.0,
                         static_cast<double>(cfg.machine.timing.mem_latency));
  std::cout << "TAC: conflict events on the data side: "
            << tac_res.dl1.events.size() << ", required runs = "
            << tac_res.dl1.required_runs
            << "  (analytic: ln(1e-9)/ln(1-(1/8)^4) ~ 84873)\n\n";

  // What campaigns of different sizes actually observe.
  AsciiTable table({"campaign runs", "max observed", "knee seen?"});
  const auto big = analyzer.measure(p, {}, tac_res.dl1.required_runs);
  const double knee_level = *std::max_element(big.begin(), big.end()) * 0.8;
  for (std::size_t runs : {500u, 2000u, 10000u, 40000u}) {
    const auto times = analyzer.measure(p, {}, runs);
    const double mx = *std::max_element(times.begin(), times.end());
    table.add_row({std::to_string(runs), fmt(mx, 0),
                   mx >= knee_level ? "yes" : "NO"});
  }
  table.add_row({std::to_string(big.size()) + " (TAC)",
                 fmt(*std::max_element(big.begin(), big.end()), 0), "yes"});
  table.print(std::cout);

  const mbpta::Eccdf ecc(big);
  std::cout << "\nECCDF of the TAC-sized campaign: median "
            << fmt(ecc.value_at_exceedance(0.5), 0) << ", p1e-3 "
            << fmt(ecc.value_at_exceedance(1e-3), 0) << ", p1e-4 "
            << fmt(ecc.value_at_exceedance(1e-4), 0) << ", max "
            << fmt(ecc.max(), 0)
            << "\n(the jump past p~2.4e-4 is the co-mapped layout — the "
               "'knee' of the paper's Fig. 4)\n";
  return 0;
}
